package index

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/langmodel"
)

func doc(id int, text string) corpus.Document {
	return corpus.Document{ID: id, Text: text}
}

func buildTest(texts ...string) *Index {
	ix := New(analysis.Raw(), InQuery)
	for i, t := range texts {
		ix.Add(doc(i, t))
	}
	return ix
}

func TestAddAndStats(t *testing.T) {
	ix := buildTest("apple apple bear", "apple cat")
	if ix.NumDocs() != 2 {
		t.Errorf("NumDocs = %d", ix.NumDocs())
	}
	if ix.VocabSize() != 3 {
		t.Errorf("VocabSize = %d", ix.VocabSize())
	}
	if ix.TotalTerms() != 5 {
		t.Errorf("TotalTerms = %d", ix.TotalTerms())
	}
	if ix.DF("apple") != 2 || ix.CTF("apple") != 3 {
		t.Errorf("apple df=%d ctf=%d", ix.DF("apple"), ix.CTF("apple"))
	}
	if ix.DF("zzz") != 0 {
		t.Errorf("df of unknown term = %d", ix.DF("zzz"))
	}
}

func TestSearchRanksByRelevance(t *testing.T) {
	// Doc 0 mentions apple three times in four tokens; doc 1 once in four.
	ix := buildTest("apple apple apple pie", "apple banana cherry date", "no fruit here at all")
	hits, err := ix.SearchScored("apple", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("got %d hits, want 2", len(hits))
	}
	if hits[0].Doc != 0 || hits[1].Doc != 1 {
		t.Errorf("ranking wrong: %+v", hits)
	}
	if hits[0].Score <= hits[1].Score {
		t.Errorf("scores not descending: %+v", hits)
	}
	ids, err := ix.Search("apple", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != hits[0].Doc || ids[1] != hits[1].Doc {
		t.Errorf("Search ids %v disagree with SearchScored %+v", ids, hits)
	}
}

func TestSearchTopN(t *testing.T) {
	ix := buildTest("x a", "x b", "x c", "x d", "x e")
	hits, err := ix.Search("x", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Errorf("got %d hits, want 3", len(hits))
	}
}

func TestSearchUnknownTermFails(t *testing.T) {
	// The failed-query path that Table 3 counts.
	ix := buildTest("alpha beta")
	hits, err := ix.Search("nonexistent", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Errorf("unknown term returned %d hits", len(hits))
	}
}

func TestSearchEmptyAndZeroN(t *testing.T) {
	ix := buildTest("alpha beta")
	if hits, _ := ix.Search("", 5); len(hits) != 0 {
		t.Error("empty query returned hits")
	}
	if hits, _ := ix.Search("alpha", 0); len(hits) != 0 {
		t.Error("n=0 returned hits")
	}
	if hits, _ := ix.Search("alpha", -1); len(hits) != 0 {
		t.Error("negative n returned hits")
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	// Identical docs score identically; ties must break by doc id.
	ix := buildTest("same text here", "same text here", "same text here")
	for trial := 0; trial < 5; trial++ {
		ids, err := ix.Search("same", 3)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			if id != i {
				t.Fatalf("trial %d: hit order %v", trial, ids)
			}
		}
	}
}

func TestSearchMultiTermQuery(t *testing.T) {
	ix := buildTest("white house politics", "white snow", "house music")
	ids, err := ix.Search("white house", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("got %d hits, want 3", len(ids))
	}
	if ids[0] != 0 {
		t.Errorf("doc with both terms should rank first: %v", ids)
	}
}

func TestSearchUsesAnalyzer(t *testing.T) {
	// With the Database analyzer, queries stem and stopwords vanish.
	ix := Build([]corpus.Document{doc(0, "running dogs")}, analysis.Database(), InQuery)
	hits, err := ix.Search("runs", 5) // stems to "run", matches "running"->"run"
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Errorf("stemmed query got %d hits, want 1", len(hits))
	}
	hits, _ = ix.Search("the", 5) // stopword-only query
	if len(hits) != 0 {
		t.Errorf("stopword query got %d hits", len(hits))
	}
}

func TestFetch(t *testing.T) {
	ix := buildTest("first", "second")
	d, err := ix.Fetch(1)
	if err != nil || d.Text != "second" {
		t.Errorf("Fetch(1) = %+v, %v", d, err)
	}
	if _, err := ix.Fetch(2); err == nil {
		t.Error("Fetch out of range did not error")
	}
	if _, err := ix.Fetch(-1); err == nil {
		t.Error("Fetch(-1) did not error")
	}
}

func TestLanguageModelMatchesIndex(t *testing.T) {
	ix := buildTest("apple apple bear", "apple cat")
	lm := ix.LanguageModel()
	if lm.Docs() != 2 || lm.VocabSize() != 3 {
		t.Errorf("LM shape wrong: %v", lm)
	}
	if lm.DF("apple") != 2 || lm.CTF("apple") != 3 {
		t.Errorf("LM apple stats wrong")
	}
	if lm.TotalCTF() != ix.TotalTerms() {
		t.Errorf("LM totalCTF %d != index total %d", lm.TotalCTF(), ix.TotalTerms())
	}
}

func TestInQueryScoreBounds(t *testing.T) {
	// Single-term InQuery beliefs lie in (0.4, 1.0).
	ix := buildTest("apple apple apple", "apple pie", "banana")
	hits, err := ix.SearchScored("apple", 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Score <= 0.4 || h.Score >= 1.0 {
			t.Errorf("InQuery belief %f outside (0.4, 1.0)", h.Score)
		}
	}
}

func TestBM25RankingAgreesOnExtremes(t *testing.T) {
	ix := Build([]corpus.Document{
		doc(0, "apple apple apple pie"),
		doc(1, "apple banana cherry date"),
	}, analysis.Raw(), BM25)
	hits, err := ix.SearchScored("apple", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0].Doc != 0 {
		t.Errorf("BM25 ranking wrong: %+v", hits)
	}
	for _, h := range hits {
		if h.Score < 0 {
			t.Errorf("BM25 score negative: %f", h.Score)
		}
	}
}

func TestSearchHitsWithinBounds(t *testing.T) {
	ix := buildTest("a b c", "b c d", "c d e", "d e f")
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%6) + 1
		ids, err := ix.Search("c", n)
		if err != nil {
			return false
		}
		if len(ids) > n {
			return false
		}
		for _, id := range ids {
			if id < 0 || id >= ix.NumDocs() {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalHits(t *testing.T) {
	ix := buildTest("apple pie", "apple tart", "banana split", "cherry pie")
	cases := []struct {
		query string
		want  int
	}{
		{"apple", 2},
		{"pie", 2},
		{"apple pie", 3}, // union: docs 0, 1, 3
		{"zzz", 0},
		{"", 0},
	}
	for _, c := range cases {
		got, err := ix.TotalHits(c.query)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("TotalHits(%q) = %d, want %d", c.query, got, c.want)
		}
	}
}

func TestTopNMatchesFullSort(t *testing.T) {
	// The heap path must produce exactly the full-sort ordering,
	// including tie-breaks.
	if err := quick.Check(func(raw [40]uint8, nRaw uint8) bool {
		hits := make([]Hit, len(raw))
		for i, v := range raw {
			hits[i] = Hit{Doc: i, Score: float64(v % 8)} // force score ties
		}
		n := int(nRaw%12) + 1
		got := topN(append([]Hit(nil), hits...), n)

		want := append([]Hit(nil), hits...)
		sort.Slice(want, func(i, j int) bool { return betterHit(want[i], want[j]) })
		if n < len(want) {
			want = want[:n]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSearchLargeResultSetUsesHeapPath(t *testing.T) {
	// >4n candidates triggers the heap path; results must stay correct.
	docs := make([]corpus.Document, 200)
	for i := range docs {
		reps := i%7 + 1
		text := ""
		for r := 0; r < reps; r++ {
			text += "common "
		}
		docs[i] = corpus.Document{ID: i, Text: text + "filler"}
	}
	ix := Build(docs, analysis.Raw(), InQuery)
	top, err := ix.SearchScored("common", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("got %d hits", len(top))
	}
	for i := 1; i < len(top); i++ {
		if betterHit(top[i], top[i-1]) {
			t.Fatalf("hits out of order: %+v", top)
		}
	}
	// Highest-tf docs (i%7 == 6) must dominate the top.
	if top[0].Doc%7 != 6 {
		t.Errorf("top hit %+v is not a max-tf document", top[0])
	}
}

func TestScoringString(t *testing.T) {
	if InQuery.String() != "inquery" || BM25.String() != "bm25" {
		t.Error("Scoring.String wrong")
	}
	if Scoring(99).String() != "unknown" {
		t.Error("unknown scoring String wrong")
	}
}

func BenchmarkIndexAdd(b *testing.B) {
	docs := corpus.Scaled(corpus.CACM(), 0.05).MustGenerate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := New(analysis.Database(), InQuery)
		for _, d := range docs {
			ix.Add(d)
		}
	}
}

func BenchmarkSearchOneTerm(b *testing.B) {
	docs := corpus.Scaled(corpus.CACM(), 0.2).MustGenerate()
	ix := Build(docs, analysis.Database(), InQuery)
	lm := ix.LanguageModel()
	terms := lm.TopTerms(langmodel.ByDF, 100) // frequent terms: worst-case posting lists
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(terms[i%len(terms)], 4); err != nil {
			b.Fatal(err)
		}
	}
}

// referenceSearchScored is the pre-densification implementation — a
// per-query map accumulator followed by a full sort — kept in tests as the
// oracle the pooled dense accumulator must match bit for bit.
func referenceSearchScored(ix *Index, query string, n int) []Hit {
	if n <= 0 {
		return nil
	}
	terms := ix.analyzer.Tokens(query)
	if len(terms) == 0 {
		return nil
	}
	scores := make(map[int32]float64)
	avgdl := ix.avgDocLen()
	for _, t := range terms {
		plist, ok := ix.postings[t]
		if !ok {
			continue
		}
		df := len(plist)
		for _, p := range plist {
			scores[p.doc] += ix.termScore(float64(p.tf), float64(ix.docLens[p.doc]), df, avgdl)
		}
	}
	if len(scores) == 0 {
		return nil
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		hits = append(hits, Hit{Doc: int(doc), Score: s})
	}
	sort.Slice(hits, func(i, j int) bool { return betterHit(hits[i], hits[j]) })
	if n < len(hits) {
		hits = hits[:n]
	}
	return hits
}

func TestSearchScoredMatchesReference(t *testing.T) {
	docs := corpus.Scaled(corpus.CACM(), 0.1).MustGenerate()
	for _, scoring := range []Scoring{InQuery, BM25} {
		ix := Build(docs, analysis.Database(), scoring)
		queries := []string{
			"the", "algorithm data", "computing system language program",
			"zzz-unknown", "the zzz-unknown", "", "the the the",
		}
		for _, q := range queries {
			for _, n := range []int{1, 4, 17, len(docs), len(docs) * 2} {
				got, err := ix.SearchScored(q, n)
				if err != nil {
					t.Fatal(err)
				}
				want := referenceSearchScored(ix, q, n)
				if len(got) != len(want) {
					t.Fatalf("%s q=%q n=%d: %d hits, reference %d", scoring, q, n, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s q=%q n=%d: hit %d = %+v, reference %+v", scoring, q, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestTopNCoveringAllHits(t *testing.T) {
	// n >= len(hits) must behave like a full sort, not panic or truncate.
	hits := []Hit{{Doc: 2, Score: 1}, {Doc: 0, Score: 3}, {Doc: 1, Score: 3}}
	for _, n := range []int{3, 4, 1000} {
		got := topN(append([]Hit(nil), hits...), n)
		want := []Hit{{Doc: 0, Score: 3}, {Doc: 1, Score: 3}, {Doc: 2, Score: 1}}
		if len(got) != len(want) {
			t.Fatalf("n=%d: got %d hits", n, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: got %+v, want %+v", n, got, want)
			}
		}
	}
}

// TestSearchScoredScratchReuse hammers one pooled scratch across indexes of
// different sizes to exercise the generation-mark reset and buffer
// regrowth paths.
func TestSearchScoredScratchReuse(t *testing.T) {
	small := buildTest("apple pie", "apple tart", "banana bread")
	large := buildTest(
		"apple one", "apple two", "apple three", "apple four", "apple five",
		"apple six", "apple seven", "apple eight", "apple nine", "apple ten",
	)
	for round := 0; round < 50; round++ {
		for _, ix := range []*Index{small, large, small} {
			got, err := ix.SearchScored("apple", 3)
			if err != nil {
				t.Fatal(err)
			}
			want := referenceSearchScored(ix, "apple", 3)
			if len(got) != len(want) {
				t.Fatalf("round %d: %d hits, want %d", round, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("round %d: hit %d = %+v, want %+v", round, i, got[i], want[i])
				}
			}
		}
	}
}
