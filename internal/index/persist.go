package index

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/corpus"
)

// Index persistence. A database's index is expensive to build relative to
// loading it, so indexes can be saved to disk and reopened — the way any
// real search service runs. The format is a gob-encoded snapshot of the
// postings, documents, statistics, and enough of the analyzer
// configuration (stem flag, stopword list, length/number filters) to
// reconstruct an identical query pipeline.

// indexDTO is the exported on-disk shape of an Index.
type indexDTO struct {
	Scoring  Scoring
	Analyzer analyzerDTO
	Docs     []corpus.Document
	DocLens  []int32
	Postings map[string][]postingDTO
	CTF      map[string]int64
	TotalLen int64
}

type postingDTO struct {
	Doc int32
	TF  int32
}

type analyzerDTO struct {
	Stopwords   []string
	Stem        bool
	MinLength   int
	DropNumbers bool
}

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	dto := indexDTO{
		Scoring: ix.scoring,
		Analyzer: analyzerDTO{
			Stem:        ix.analyzer.Stem,
			MinLength:   ix.analyzer.MinLength,
			DropNumbers: ix.analyzer.DropNumbers,
		},
		Docs:     ix.docs,
		DocLens:  ix.docLens,
		Postings: make(map[string][]postingDTO, len(ix.postings)),
		CTF:      ix.ctf,
		TotalLen: ix.totalLen,
	}
	if ix.analyzer.Stoplist != nil {
		dto.Analyzer.Stopwords = ix.analyzer.Stoplist.Words()
	}
	for t, plist := range ix.postings {
		out := make([]postingDTO, len(plist))
		for i, p := range plist {
			out[i] = postingDTO{Doc: p.doc, TF: p.tf}
		}
		dto.Postings[t] = out
	}
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := gob.NewEncoder(bw).Encode(&dto); err != nil {
		return cw.n, fmt.Errorf("index: encode: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return cw.n, fmt.Errorf("index: flush: %w", err)
	}
	return cw.n, nil
}

// ReadFrom deserializes an index written by WriteTo.
func ReadFrom(r io.Reader) (*Index, error) {
	var dto indexDTO
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&dto); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	an := analysis.Analyzer{
		Stem:        dto.Analyzer.Stem,
		MinLength:   dto.Analyzer.MinLength,
		DropNumbers: dto.Analyzer.DropNumbers,
	}
	if len(dto.Analyzer.Stopwords) > 0 {
		an.Stoplist = analysis.NewStoplist(dto.Analyzer.Stopwords)
	}
	ix := New(an, dto.Scoring)
	ix.docs = dto.Docs
	ix.docLens = dto.DocLens
	ix.totalLen = dto.TotalLen
	if dto.CTF != nil {
		ix.ctf = dto.CTF
	}
	for t, plist := range dto.Postings {
		in := make([]posting, len(plist))
		for i, p := range plist {
			if int(p.Doc) < 0 || int(p.Doc) >= len(ix.docs) {
				return nil, fmt.Errorf("index: posting for %q references missing document %d", t, p.Doc)
			}
			in[i] = posting{doc: p.Doc, tf: p.TF}
		}
		ix.postings[t] = in
	}
	if len(ix.docLens) != len(ix.docs) {
		return nil, fmt.Errorf("index: %d doc lengths for %d documents", len(ix.docLens), len(ix.docs))
	}
	return ix, nil
}

// Save writes the index to a file.
func (ix *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// Load reads an index from a file written by Save.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	//lint:ignore errsink file opened for reading; close cannot lose data
	defer f.Close()
	return ReadFrom(f)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
