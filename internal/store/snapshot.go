// Compiled-snapshot persistence: a segment/manifest scheme extending
// Put's atomic-rename + fsync discipline from single model files to the
// two-file commit a compiled snapshot needs.
//
// A snapshot lives in one immutable segment file (`seg-<seq>.qbsnap`, the
// selection package's checksummed binary format) named by a monotonically
// increasing sequence number, never rewritten in place. Which segment is
// current is decided solely by MANIFEST, a tiny self-checksummed record
// replaced atomically (temp file + fsync + rename + directory fsync), so
// every crash point leaves a loadable state:
//
//   - crash while writing the temp segment: MANIFEST still names the old
//     segment; the orphan temp/segment is garbage-collected on next Save;
//   - crash after the segment rename but before the manifest rename:
//     same — the new segment is invisible until MANIFEST says otherwise;
//   - torn or bit-flipped manifest: the self-CRC fails and Load reports
//     corruption, never a guess;
//   - torn or bit-flipped segment (lost cache writes, disk rot): the
//     manifest's whole-file CRC and the format's per-section checksums
//     fail and Load reports corruption.
//
// Callers treat any Load error as a cold start (recompile from models);
// a snapshot is a cache, and the design never serves a torn one.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/selection"
)

// SegmentExt is the file extension for snapshot segment files.
const SegmentExt = ".qbsnap"

// manifestName is the file naming the current segment.
const manifestName = "MANIFEST"

// ErrNoSnapshot is returned by Load when the store holds no snapshot yet.
var ErrNoSnapshot = errors.New("store: no snapshot")

var snapCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// SnapshotManifest is the persisted pointer to the current segment.
type SnapshotManifest struct {
	Version int    `json:"version"`
	Seq     uint64 `json:"seq"`
	Segment string `json:"segment"`
	Epoch   uint64 `json:"epoch"`
	Size    int64  `json:"size"`
	CRC     uint32 `json:"crc"` // CRC-32C of the whole segment file
}

// SnapshotStore persists compiled selection snapshots in a directory.
// Save and Load are safe against crashes at any point but not against
// concurrent Saves from multiple processes (one service owns the dir).
type SnapshotStore struct {
	dir string

	// WrapWriter, when non-nil, wraps the segment writer during Save — the
	// fault-injection point crash-safety tests use (internal/faulty.Writer
	// truncates the n-th write mid-buffer, the torn-segment scenario).
	// Production code leaves it nil.
	WrapWriter func(io.Writer) io.Writer
	// DisableMmap forces Load onto the portable read-into-heap path even
	// where memory mapping is available (tests of the fallback).
	DisableMmap bool
}

// OpenSnapshots creates (if needed) and opens a snapshot store rooted at
// dir.
func OpenSnapshots(dir string) (*SnapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open snapshots %s: %w", dir, err)
	}
	return &SnapshotStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (ss *SnapshotStore) Dir() string { return ss.dir }

// Manifest reads and verifies the current manifest. ErrNoSnapshot when
// none exists yet.
func (ss *SnapshotStore) Manifest() (*SnapshotManifest, error) {
	raw, err := os.ReadFile(filepath.Join(ss.dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoSnapshot
		}
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	payload, crcLine, ok := strings.Cut(string(raw), "\n")
	if !ok {
		return nil, fmt.Errorf("store: manifest has no checksum line")
	}
	var gotCRC uint32
	if _, err := fmt.Sscanf(strings.TrimSpace(crcLine), "%08x", &gotCRC); err != nil {
		return nil, fmt.Errorf("store: manifest checksum line: %w", err)
	}
	if want := crc32.Checksum([]byte(payload), snapCastagnoli); gotCRC != want {
		return nil, fmt.Errorf("store: manifest checksum %08x, want %08x (corrupt manifest)", gotCRC, want)
	}
	var m SnapshotManifest
	if err := json.Unmarshal([]byte(payload), &m); err != nil {
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	if m.Segment == "" || strings.ContainsAny(m.Segment, "/\\") {
		return nil, fmt.Errorf("store: manifest names invalid segment %q", m.Segment)
	}
	return &m, nil
}

// SegmentPath returns the path of the segment a manifest names.
func (ss *SnapshotStore) SegmentPath(m *SnapshotManifest) string {
	return filepath.Join(ss.dir, m.Segment)
}

// Save persists snap as a new segment and commits it by atomically
// replacing the manifest, returning the segment size in bytes. The
// previous snapshot remains the loadable one until the manifest rename;
// superseded segments are garbage-collected afterwards.
func (ss *SnapshotStore) Save(snap *selection.Snapshot) (int64, error) {
	data, err := selection.EncodeSnapshot(snap)
	if err != nil {
		return 0, fmt.Errorf("store: encode snapshot: %w", err)
	}
	seq := uint64(1)
	if prev, err := ss.Manifest(); err == nil {
		seq = prev.Seq + 1
	}
	segName := fmt.Sprintf("seg-%016d%s", seq, SegmentExt)

	// Segment: temp file, full write, fsync, rename, directory fsync —
	// the same discipline as Put, so the bytes are durable before any
	// pointer to them exists.
	tmp, err := os.CreateTemp(ss.dir, ".tmp-seg-*")
	if err != nil {
		return 0, fmt.Errorf("store: temp segment: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	w := io.Writer(tmp)
	if ss.WrapWriter != nil {
		w = ss.WrapWriter(w)
	}
	if _, err := w.Write(data); err != nil {
		cleanup()
		return 0, fmt.Errorf("store: write segment: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return 0, fmt.Errorf("store: sync segment: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: close segment: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(ss.dir, segName)); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: rename segment: %w", err)
	}
	if err := syncDir(ss.dir); err != nil {
		return 0, err
	}

	m := SnapshotManifest{
		Version: 1,
		Seq:     seq,
		Segment: segName,
		Epoch:   snap.Epoch,
		Size:    int64(len(data)),
		CRC:     crc32.Checksum(data, snapCastagnoli),
	}
	if err := ss.writeManifest(&m); err != nil {
		return 0, err
	}
	ss.gcSegments(segName)
	return int64(len(data)), nil
}

// writeManifest atomically replaces MANIFEST with a self-checksummed
// record: one JSON line, then the CRC-32C of that line in hex.
func (ss *SnapshotStore) writeManifest(m *SnapshotManifest) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: marshal manifest: %w", err)
	}
	body := fmt.Sprintf("%s\n%08x\n", payload, crc32.Checksum(payload, snapCastagnoli))
	tmp, err := os.CreateTemp(ss.dir, ".tmp-manifest-*")
	if err != nil {
		return fmt.Errorf("store: temp manifest: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.WriteString(body); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: sync manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close manifest: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(ss.dir, manifestName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename manifest: %w", err)
	}
	return syncDir(ss.dir)
}

// gcSegments removes superseded segment files and orphaned temp files.
// Best effort: a leftover costs disk, never correctness.
func (ss *SnapshotStore) gcSegments(current string) {
	entries, err := os.ReadDir(ss.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		stale := (strings.HasSuffix(name, SegmentExt) && name != current) ||
			strings.HasPrefix(name, ".tmp-seg-") || strings.HasPrefix(name, ".tmp-manifest-")
		if stale {
			os.Remove(filepath.Join(ss.dir, name))
		}
	}
}

// Load reads, verifies, and decodes the current snapshot, returning it
// with the segment size in bytes. On platforms with memory mapping the
// segment is mapped read-only and the snapshot's numeric arrays alias the
// mapping (segments are immutable and replaced by rename, so the mapped
// inode can never change under the snapshot); elsewhere — or with
// DisableMmap — the file is read onto the heap. Any integrity failure
// (manifest self-CRC, segment CRC, per-section checksums, structural
// validation) is an error: the caller falls back to a full recompile,
// never a torn snapshot.
func (ss *SnapshotStore) Load() (*selection.Snapshot, int64, error) {
	m, err := ss.Manifest()
	if err != nil {
		return nil, 0, err
	}
	path := ss.SegmentPath(m)
	data, err := ss.readSegment(path, m.Size)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, fmt.Errorf("store: manifest names missing segment %s: %w", m.Segment, ErrNoSnapshot)
		}
		return nil, 0, err
	}
	if int64(len(data)) != m.Size {
		return nil, 0, fmt.Errorf("store: segment %s is %d bytes, manifest says %d (truncated write)",
			m.Segment, len(data), m.Size)
	}
	if got := crc32.Checksum(data, snapCastagnoli); got != m.CRC {
		return nil, 0, fmt.Errorf("store: segment %s checksum %08x, manifest says %08x (corrupt segment)",
			m.Segment, got, m.CRC)
	}
	snap, err := selection.DecodeSnapshot(data)
	if err != nil {
		return nil, 0, fmt.Errorf("store: decode segment %s: %w", m.Segment, err)
	}
	return snap, int64(len(data)), nil
}

// readSegment returns the segment bytes, memory-mapped when possible.
func (ss *SnapshotStore) readSegment(path string, size int64) ([]byte, error) {
	if !ss.DisableMmap && size > 0 {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		data, merr := mapFile(f, size)
		f.Close() // the mapping outlives the descriptor
		if merr == nil {
			return data, nil
		}
		// Fall through to the portable path on any mapping failure.
	}
	return os.ReadFile(path)
}
