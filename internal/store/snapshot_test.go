package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faulty"
	"repro/internal/langmodel"
	"repro/internal/selection"
)

func snapFixture(epoch uint64, df int) *selection.Snapshot {
	a := langmodel.New()
	a.SetDocs(20)
	a.AddTerm("apple", langmodel.TermStats{DF: df, CTF: int64(df * 3)})
	a.AddTerm("stock", langmodel.TermStats{DF: 2, CTF: 5})
	b := langmodel.New()
	b.SetDocs(9)
	b.AddTerm("stock", langmodel.TermStats{DF: 7, CTF: 11})
	return &selection.Snapshot{
		Epoch:        epoch,
		Names:        []string{"alpha", "beta"},
		Fingerprints: []uint64{a.Fingerprint(), b.Fingerprint()},
		Compiled:     selection.Compile([]*langmodel.Model{a, b}),
	}
}

func openSnapDir(t *testing.T) *SnapshotStore {
	t.Helper()
	ss, err := OpenSnapshots(filepath.Join(t.TempDir(), "snap"))
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// segmentFiles lists the .qbsnap files currently in the store.
func segmentFiles(t *testing.T, ss *SnapshotStore) []string {
	t.Helper()
	entries, err := os.ReadDir(ss.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), SegmentExt) {
			segs = append(segs, e.Name())
		}
	}
	return segs
}

func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	for _, mmap := range []bool{true, false} {
		ss := openSnapDir(t)
		ss.DisableMmap = !mmap
		if _, _, err := ss.Load(); !errors.Is(err, ErrNoSnapshot) {
			t.Fatalf("empty store Load err = %v, want ErrNoSnapshot", err)
		}
		in := snapFixture(7, 4)
		n, err := ss.Save(in)
		if err != nil {
			t.Fatal(err)
		}
		out, size, err := ss.Load()
		if err != nil {
			t.Fatalf("mmap=%v: %v", mmap, err)
		}
		if size != n {
			t.Fatalf("Load size %d, Save said %d", size, n)
		}
		if out.Epoch != 7 || len(out.Names) != 2 || out.Names[1] != "beta" {
			t.Fatalf("loaded %+v", out)
		}
		if out.Fingerprints[0] != in.Fingerprints[0] || out.Fingerprints[1] != in.Fingerprints[1] {
			t.Fatal("fingerprints did not round-trip")
		}
		got := out.Compiled.Rank(selection.CORI{}, []string{"stock"})
		want := in.Compiled.Rank(selection.CORI{}, []string{"stock"})
		if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("loaded snapshot ranks %v, want %v", got, want)
		}
	}
}

func TestSnapshotSaveReplacesAndGCs(t *testing.T) {
	ss := openSnapDir(t)
	for epoch := uint64(1); epoch <= 3; epoch++ {
		if _, err := ss.Save(snapFixture(epoch, int(epoch))); err != nil {
			t.Fatal(err)
		}
	}
	out, _, err := ss.Load()
	if err != nil {
		t.Fatal(err)
	}
	if out.Epoch != 3 {
		t.Fatalf("loaded epoch %d, want the latest (3)", out.Epoch)
	}
	m, err := ss.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 3 {
		t.Fatalf("manifest seq %d, want 3", m.Seq)
	}
	if segs := segmentFiles(t, ss); len(segs) != 1 {
		t.Fatalf("superseded segments not collected: %v", segs)
	}
}

// TestSnapshotTornSegmentWrite is the crash-safety scenario: the process
// dies mid-way through writing a new segment (faulty.Writer delivers half
// a write, then fails). The previous snapshot must remain the loadable
// one, and the next healthy Save must recover fully.
func TestSnapshotTornSegmentWrite(t *testing.T) {
	ss := openSnapDir(t)
	if _, err := ss.Save(snapFixture(1, 1)); err != nil {
		t.Fatal(err)
	}

	ss.WrapWriter = func(w io.Writer) io.Writer { return faulty.WrapWriter(w, 1) }
	if _, err := ss.Save(snapFixture(2, 2)); !errors.Is(err, faulty.ErrInjected) {
		t.Fatalf("torn Save err = %v, want injected", err)
	}
	ss.WrapWriter = nil

	out, _, err := ss.Load()
	if err != nil {
		t.Fatalf("previous snapshot unloadable after torn write: %v", err)
	}
	if out.Epoch != 1 {
		t.Fatalf("loaded epoch %d, want the pre-crash 1", out.Epoch)
	}

	if _, err := ss.Save(snapFixture(3, 3)); err != nil {
		t.Fatal(err)
	}
	if out, _, err = ss.Load(); err != nil || out.Epoch != 3 {
		t.Fatalf("post-recovery Load = epoch %d, err %v", out.Epoch, err)
	}
	if segs := segmentFiles(t, ss); len(segs) != 1 {
		t.Fatalf("torn-write leftovers not collected: %v", segs)
	}
}

// TestSnapshotCorruptManifest flips one byte of the manifest: the self-CRC
// must refuse it rather than follow a half-written pointer.
func TestSnapshotCorruptManifest(t *testing.T) {
	ss := openSnapDir(t)
	if _, err := ss.Save(snapFixture(1, 1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(ss.Dir(), manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[2] ^= 0x01 // inside the JSON payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ss.Load(); err == nil || !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("corrupt manifest Load err = %v", err)
	}
}

// TestSnapshotCorruptSegment flips one byte of the committed segment: the
// whole-file CRC in the manifest must catch it.
func TestSnapshotCorruptSegment(t *testing.T) {
	ss := openSnapDir(t)
	ss.DisableMmap = true // the test rewrites the file in place
	if _, err := ss.Save(snapFixture(1, 1)); err != nil {
		t.Fatal(err)
	}
	m, err := ss.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ss.SegmentPath(m))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(ss.SegmentPath(m), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ss.Load(); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt segment Load err = %v", err)
	}

	// Truncation is caught by the size check before any decoding.
	if err := os.WriteFile(ss.SegmentPath(m), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ss.Load(); err == nil {
		t.Fatal("truncated segment loaded")
	}
}

func TestSnapshotMissingSegment(t *testing.T) {
	ss := openSnapDir(t)
	if _, err := ss.Save(snapFixture(1, 1)); err != nil {
		t.Fatal(err)
	}
	m, err := ss.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(ss.SegmentPath(m)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ss.Load(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("missing segment Load err = %v, want ErrNoSnapshot", err)
	}
}
