//go:build !unix

package store

import (
	"errors"
	"os"
)

// mapFile reports memory mapping as unsupported; Load falls back to
// reading the segment onto the heap.
func mapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.ErrUnsupported
}
