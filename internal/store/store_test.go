package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/langmodel"
)

func model(texts ...string) *langmodel.Model {
	m := langmodel.New()
	for _, t := range texts {
		m.AddDocument(strings.Fields(t))
	}
	return m
}

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "models"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	m := model("apple apple bear", "cat")
	if err := s.Put("wsj88", m); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("wsj88")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Error("round trip mismatch")
	}
}

func TestGetMissing(t *testing.T) {
	s := open(t)
	_, err := s.Get("nope")
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("got %v, want ErrNotFound", err)
	}
}

func TestPutReplacesAtomically(t *testing.T) {
	s := open(t)
	if err := s.Put("db", model("old content")); err != nil {
		t.Fatal(err)
	}
	newModel := model("new content entirely")
	if err := s.Put("db", newModel); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("db")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(newModel) {
		t.Error("replacement not visible")
	}
	// No temp litter.
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestList(t *testing.T) {
	s := open(t)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := s.Put(name, model("x")); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	if len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Errorf("List = %v, want %v", names, want)
	}
}

func TestListIgnoresForeignFiles(t *testing.T) {
	s := open(t)
	if err := s.Put("real", model("x")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(s.Dir(), "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "real" {
		t.Errorf("List = %v, want [real]", names)
	}
}

func TestDelete(t *testing.T) {
	s := open(t)
	if err := s.Put("victim", model("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("victim"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("victim"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted model still readable")
	}
	// Idempotent.
	if err := s.Delete("victim"); err != nil {
		t.Errorf("second delete errored: %v", err)
	}
}

func TestNameValidation(t *testing.T) {
	s := open(t)
	bad := []string{"", ".", "..", "a/b", `a\b`, ".hidden", "../escape"}
	for _, name := range bad {
		if err := s.Put(name, model("x")); err == nil {
			t.Errorf("Put accepted bad name %q", name)
		}
		if _, err := s.Get(name); err == nil {
			t.Errorf("Get accepted bad name %q", name)
		}
		if err := s.Delete(name); err == nil {
			t.Errorf("Delete accepted bad name %q", name)
		}
	}
	// Names with dots inside are fine.
	if err := s.Put("db.v2", model("x")); err != nil {
		t.Errorf("dotted name rejected: %v", err)
	}
}

func TestGetCorruptFile(t *testing.T) {
	s := open(t)
	if err := os.WriteFile(filepath.Join(s.Dir(), "bad"+Ext), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("bad"); err == nil {
		t.Error("corrupt model decoded without error")
	}
}

func TestOpenCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "c")
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Errorf("directory not created: %v", err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := open(t)
	if err := s.Put("shared", model("initial text")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 20)
	for i := 0; i < 10; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			if err := s.Put("shared", model("version", string(rune('a'+i)))); err != nil {
				errCh <- err
			}
		}(i)
		go func() {
			defer wg.Done()
			if _, err := s.Get("shared"); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
