// Package store persists learned language models on disk. A selection
// service samples each database once (or occasionally re-samples) and
// consults the stored models for every query thereafter; models must
// survive restarts and be cheap to load. Files use the compact binary
// format of langmodel.WriteBinary and are written atomically
// (temp file + rename), so a crash can never leave a torn model.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/langmodel"
)

// Ext is the file extension for stored models.
const Ext = ".qblm"

// ErrNotFound is returned by Get for unknown model names.
var ErrNotFound = errors.New("store: model not found")

// Store is a directory of named language models. Methods are safe for
// concurrent use by multiple goroutines as long as names are not written
// concurrently with themselves (last write wins either way — writes are
// atomic renames).
type Store struct {
	dir string
}

// Open creates (if needed) and opens a model store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validName rejects names that would escape the store directory or
// collide with temp files.
func validName(name string) error {
	if name == "" {
		return errors.New("store: empty model name")
	}
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("store: invalid model name %q", name)
	}
	if strings.HasPrefix(name, ".") {
		return fmt.Errorf("store: model name %q may not start with a dot", name)
	}
	return nil
}

func (s *Store) path(name string) string {
	return filepath.Join(s.dir, name+Ext)
}

// Put writes the model under name, replacing any previous version
// atomically.
func (s *Store) Put(name string, m *langmodel.Model) error {
	if err := validName(name); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := m.WriteBinary(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: write %s: %w", name, err)
	}
	// The temp file's bytes must be on stable storage before the rename
	// publishes it, or a crash could leave the final name pointing at
	// truncated data — exactly the torn model the atomic rename promises
	// to rule out.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: sync %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close %s: %w", name, err)
	}
	if err := os.Rename(tmpName, s.path(name)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename %s: %w", name, err)
	}
	// And the rename itself must be durable: fsync the directory so the
	// new entry survives a crash too.
	return syncDir(s.dir)
}

// syncDir fsyncs a directory, making recent renames in it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	//lint:ignore errsink directory handle close after the explicit Sync check; durability was already decided by Sync
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}

// Get loads the model stored under name. Returns ErrNotFound for unknown
// names.
func (s *Store) Get(name string) (*langmodel.Model, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	f, err := os.Open(s.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: %q: %w", name, ErrNotFound)
		}
		return nil, fmt.Errorf("store: open %s: %w", name, err)
	}
	//lint:ignore errsink file opened for reading; close cannot lose data
	defer f.Close()
	m, err := langmodel.ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("store: decode %s: %w", name, err)
	}
	return m, nil
}

// Delete removes the model stored under name. Deleting a missing model is
// not an error.
func (s *Store) Delete(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	if err := os.Remove(s.path(name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %s: %w", name, err)
	}
	return nil
}

// List returns the names of all stored models, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), Ext) {
			continue
		}
		names = append(names, strings.TrimSuffix(e.Name(), Ext))
	}
	sort.Strings(names)
	return names, nil
}
