//go:build unix

package store

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and private. The mapping is
// intentionally never unmapped: the returned bytes back a Compiled
// snapshot whose lifetime the store cannot see, and a process holds at
// most one live snapshot mapping per store generation — superseded
// mappings are reclaimed when the process exits. Segments are immutable
// and replaced by rename, so the mapped inode never changes underneath
// the snapshot even after the file name is garbage-collected.
func mapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
}
