package parallel

import (
	"errors"
	"testing"

	"repro/internal/telemetry"
)

func TestMapAndGroupAreInstrumented(t *testing.T) {
	reg := telemetry.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	items := []int{1, 2, 3, 4, 5}
	boom := errors.New("boom")
	_, err := Map(2, items, func(i int, v int) (int, error) {
		if v == 3 {
			return 0, boom
		}
		return v * v, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Map error = %v, want boom", err)
	}

	g := NewGroup(2)
	g.Go(func() error { return nil })
	g.Go(func() error { return boom })
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Group error = %v, want boom", err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["parallel_tasks_total"]; got != 7 {
		t.Fatalf("parallel_tasks_total = %d, want 7", got)
	}
	if got := snap.Counters["parallel_task_errors_total"]; got != 2 {
		t.Fatalf("parallel_task_errors_total = %d, want 2", got)
	}
	if got := snap.Gauges["parallel_busy_workers"]; got != 0 {
		t.Fatalf("parallel_busy_workers = %d after quiescence, want 0", got)
	}
	if got := snap.Histograms["parallel_task_seconds"].Count; got != 7 {
		t.Fatalf("parallel_task_seconds count = %d, want 7", got)
	}
}

func TestSetMetricsNilDisables(t *testing.T) {
	SetMetrics(nil)
	if _, err := Map(2, []int{1, 2}, func(i, v int) (int, error) { return v, nil }); err != nil {
		t.Fatal(err)
	}
}
