// Package parallel is the experiment suite's worker pool: a minimal
// errgroup-style fan-out helper with a concurrency cap and *ordered*
// result collection.
//
// Every experiment in this repository is a set of independent sampling
// runs, each fully determined by its own seed (corpora × strategies ×
// seeds). That independence is what makes parallelism safe: Map runs the
// work function concurrently but returns results in input order, so a
// parallel suite produces byte-identical output to the sequential path.
// Determinism is a documented invariant of core.Sample and the golden
// tests in internal/experiments assert it end to end.
//
// A workers value of 1 (or a single item) takes a purely sequential fast
// path with no goroutines at all, which keeps single-threaded benchmarks
// comparable with the pre-parallel trajectory.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// metricsReg is the package's optional telemetry sink. The pool is shared
// infrastructure (experiment suite, service fan-out), so instrumentation
// is process-wide rather than per-call: SetMetrics installs a registry
// and every Map/ForN/Group task from then on is counted. When unset the
// hot path pays a single atomic load per Map call.
var metricsReg atomic.Pointer[telemetry.Registry]

// SetMetrics installs the registry that receives pool utilization
// (parallel_busy_workers gauge), task counts (parallel_tasks_total,
// parallel_task_errors_total) and task latency (parallel_task_seconds
// histogram). nil disables instrumentation.
func SetMetrics(reg *telemetry.Registry) { metricsReg.Store(reg) }

// instrument wraps fn with the installed registry's instruments; it
// returns fn unchanged when no registry is installed.
func instrument[T, R any](fn func(i int, item T) (R, error)) func(i int, item T) (R, error) {
	reg := metricsReg.Load()
	if reg == nil {
		return fn
	}
	busy := reg.Gauge("parallel_busy_workers")
	tasks := reg.Counter("parallel_tasks_total")
	fails := reg.Counter("parallel_task_errors_total")
	return func(i int, item T) (R, error) {
		busy.Add(1)
		sp := reg.StartSpan("parallel_task_seconds")
		out, err := fn(i, item)
		sp.End()
		busy.Add(-1)
		tasks.Inc()
		if err != nil {
			fails.Inc()
		}
		return out, err
	}
}

// Workers resolves a requested concurrency level: n > 0 is used as given,
// anything else (0, negative) means "one worker per available CPU"
// (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i, items[i]) for every item with at most workers concurrent
// invocations and returns the results in input order. All items are
// processed even when some fail; the returned error is the lowest-index
// error, so a parallel Map reports the same error a sequential loop would
// have hit first. workers <= 1 or len(items) <= 1 runs inline without
// goroutines.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	fn = instrument(fn)
	out := make([]R, len(items))
	errs := make([]error, len(items))
	if workers = Workers(workers); workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 || len(items) <= 1 {
		for i, item := range items {
			out[i], errs[i] = fn(i, item)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					out[i], errs[i] = fn(i, items[i])
				}
			}()
		}
		for i := range items {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// ForN runs fn(i) for i in [0, n) with at most workers concurrent
// invocations; the returned error is the lowest-index one.
func ForN(workers, n int, fn func(i int) error) error {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	_, err := Map(workers, idx, func(i int, _ int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// Group is an errgroup-style pool for heterogeneous tasks whose results
// are collected by the callers themselves (e.g. pre-building several
// corpora). Tasks submitted with Go run with at most the configured
// concurrency; Wait blocks until all of them finish and returns the first
// error in submission order.
type Group struct {
	sem  chan struct{}
	wg   sync.WaitGroup
	mu   sync.Mutex
	errs []error // indexed by submission order
	n    int
}

// NewGroup returns a Group running at most workers tasks at once
// (workers <= 0 means GOMAXPROCS).
func NewGroup(workers int) *Group {
	return &Group{sem: make(chan struct{}, Workers(workers))}
}

// Go submits a task. It never blocks the caller beyond bookkeeping; the
// task itself waits for a worker slot.
func (g *Group) Go(fn func() error) {
	inner := fn
	wrapped := instrument(func(int, struct{}) (struct{}, error) { return struct{}{}, inner() })
	fn = func() error { _, err := wrapped(0, struct{}{}); return err }
	g.mu.Lock()
	i := g.n
	g.n++
	g.errs = append(g.errs, nil)
	g.mu.Unlock()
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.sem <- struct{}{}
		defer func() { <-g.sem }()
		err := fn()
		g.mu.Lock()
		g.errs[i] = err
		g.mu.Unlock()
	}()
}

// Wait blocks until every submitted task has finished and returns the
// first error in submission order (nil if none failed).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, err := range g.errs {
		if err != nil {
			return err
		}
	}
	return nil
}
