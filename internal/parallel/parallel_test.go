package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, 100, 0} {
		out, err := Map(workers, items, func(i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, nil, func(i int, v string) (string, error) { return v, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	wantErr := errors.New("boom-2")
	_, err := Map(4, items, func(i, v int) (int, error) {
		if i == 5 {
			return 0, errors.New("boom-5")
		}
		if i == 2 {
			return 0, wantErr
		}
		return v, nil
	})
	if err == nil || err.Error() != "boom-2" {
		t.Fatalf("want lowest-index error boom-2, got %v", err)
	}
}

func TestMapRespectsCap(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	block := make(chan struct{})
	var once sync.Once
	_, err := Map(workers, make([]int, 24), func(i, _ int) (int, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		// Rendezvous: the first worker waits until someone else has run,
		// guaranteeing the test actually observes concurrency when the
		// cap allows it.
		once.Do(func() {
			go func() { block <- struct{}{} }()
		})
		if i == 0 {
			<-block
		}
		runtime.Gosched()
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds cap %d", p, workers)
	}
}

func TestMapSequentialFastPathRunsInline(t *testing.T) {
	// workers=1 must not spawn goroutines: fn observes strictly increasing i.
	last := -1
	_, err := Map(1, make([]int, 10), func(i, _ int) (int, error) {
		if i != last+1 {
			t.Fatalf("out-of-order inline call: %d after %d", i, last)
		}
		last = i
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForN(t *testing.T) {
	var sum atomic.Int64
	if err := ForN(4, 10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
	wantErr := fmt.Errorf("fail-3")
	err := ForN(2, 8, func(i int) error {
		if i >= 3 {
			return fmt.Errorf("fail-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("want %v, got %v", wantErr, err)
	}
}

func TestGroup(t *testing.T) {
	g := NewGroup(2)
	var sum atomic.Int64
	for i := 0; i < 10; i++ {
		i := i
		g.Go(func() error {
			sum.Add(int64(i))
			if i == 4 {
				return errors.New("late")
			}
			if i == 1 {
				return errors.New("early")
			}
			return nil
		})
	}
	err := g.Wait()
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if err == nil || err.Error() != "early" {
		t.Fatalf("want first submitted error, got %v", err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit value not honored")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Error("default not GOMAXPROCS")
	}
}
