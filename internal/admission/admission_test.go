package admission

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestNilGateAdmitsEverything(t *testing.T) {
	var g *Gate
	tk, ok := g.Admit()
	if !ok || tk != nil {
		t.Fatalf("nil gate Admit = (%v, %v), want (nil, true)", tk, ok)
	}
	if k := tk.ClampK(100); k != 100 {
		t.Errorf("nil ticket ClampK(100) = %d, want passthrough", k)
	}
	if tk.Degraded() {
		t.Error("nil ticket reports degraded")
	}
	tk.Release() // must not panic
	if g.RetryAfterSeconds() != 1 {
		t.Errorf("nil gate RetryAfterSeconds = %d, want 1", g.RetryAfterSeconds())
	}
	if g.InFlight() != 0 {
		t.Errorf("nil gate InFlight = %d, want 0", g.InFlight())
	}
}

func TestNewDisabledConfigIsNil(t *testing.T) {
	if g := New(Config{}, telemetry.NewRegistry(), "service"); g != nil {
		t.Fatal("zero config must build the nil (disabled) gate")
	}
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
}

func TestMaxInFlightSheds(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := New(Config{MaxInFlight: 2}, reg, "service")

	t1, ok1 := g.Admit()
	t2, ok2 := g.Admit()
	if !ok1 || !ok2 {
		t.Fatal("requests under the cap were shed")
	}
	if _, ok := g.Admit(); ok {
		t.Fatal("request over the cap was admitted")
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`service_shed_total{reason="inflight"}`]; got != 1 {
		t.Errorf("inflight shed counter = %d, want 1", got)
	}
	if got := g.InFlight(); got != 2 {
		t.Errorf("InFlight after shed = %d, want 2 (shed arrival must not be counted)", got)
	}

	t1.Release()
	if _, ok := g.Admit(); !ok {
		t.Fatal("request after a release was shed")
	}
	t2.Release()
	// The shed counter must not have moved for admitted requests.
	if got := reg.Snapshot().Counters[`service_shed_total{reason="inflight"}`]; got != 1 {
		t.Errorf("inflight shed counter after admits = %d, want still 1", got)
	}
}

func TestDegradationClampsK(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := New(Config{MaxInFlight: 8, DegradeAt: 2, DegradeK: 5}, reg, "service")

	t1, _ := g.Admit() // depth 1: full fidelity
	if t1.Degraded() || t1.ClampK(100) != 100 || t1.ClampK(0) != 0 {
		t.Fatalf("depth-1 request degraded: ClampK(100)=%d ClampK(0)=%d", t1.ClampK(100), t1.ClampK(0))
	}
	t2, _ := g.Admit() // depth 2: at DegradeAt
	if !t2.Degraded() {
		t.Fatal("depth-2 request not degraded with DegradeAt=2")
	}
	if k := t2.ClampK(100); k != 5 {
		t.Errorf("degraded ClampK(100) = %d, want 5", k)
	}
	if k := t2.ClampK(0); k != 5 {
		t.Errorf("degraded ClampK(0) = %d, want 5 (ask-for-all is clamped)", k)
	}
	if k := t2.ClampK(3); k != 3 {
		t.Errorf("degraded ClampK(3) = %d, want 3 (already under the clamp)", k)
	}
	if got := reg.Snapshot().Counters["service_degraded_total"]; got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}
	t1.Release()
	t2.Release()
}

func TestLatencyShedding(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := New(Config{MaxP99: 10 * time.Millisecond, Window: 64}, reg, "service")
	clk := telemetry.NewManualClock(time.Unix(1000, 0))
	g.SetClock(clk.Now)

	// Feed the window with slow requests: admit, advance the clock past
	// the bound, release.
	for i := 0; i < 64; i++ {
		tk, ok := g.Admit()
		if !ok {
			t.Fatalf("request %d shed while the window was still fast", i)
		}
		clk.Advance(50 * time.Millisecond)
		tk.Release()
	}

	// Idle server: p99 is poisoned, but with nothing in flight the gate
	// must still admit (otherwise it could never observe recovery).
	tIdle, ok := g.Admit()
	if !ok {
		t.Fatal("idle-server request shed on a stale window")
	}
	// With one request in flight, a second arrival sees the bad p99.
	if _, ok := g.Admit(); ok {
		t.Fatal("arrival admitted despite p99 over the bound and a request in flight")
	}
	if got := reg.Snapshot().Counters[`service_shed_total{reason="p99"}`]; got != 1 {
		t.Errorf("p99 shed counter = %d, want 1", got)
	}
	clk.Advance(time.Millisecond)
	tIdle.Release()

	// Recovery: a stream of fast completions pushes the bad samples out
	// of the window, and concurrent arrivals are admitted again.
	for i := 0; i < 128; i++ {
		tk, ok := g.Admit()
		if !ok {
			t.Fatalf("recovery request %d shed", i)
		}
		clk.Advance(time.Millisecond)
		tk.Release()
	}
	hold, _ := g.Admit()
	if _, ok := g.Admit(); !ok {
		t.Fatal("arrival shed after the window recovered")
	}
	hold.Release()
}

func TestRetryAfterSeconds(t *testing.T) {
	reg := telemetry.NewRegistry()
	if got := New(Config{MaxInFlight: 1}, reg, "s").RetryAfterSeconds(); got != 1 {
		t.Errorf("default RetryAfterSeconds = %d, want 1", got)
	}
	if got := New(Config{MaxInFlight: 1, RetryAfter: 2500 * time.Millisecond}, reg, "s").RetryAfterSeconds(); got != 3 {
		t.Errorf("RetryAfterSeconds(2.5s) = %d, want 3 (rounded up)", got)
	}
}

func TestGaugeTracksInFlight(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := New(Config{MaxInFlight: 4}, reg, "service")
	t1, _ := g.Admit()
	t2, _ := g.Admit()
	if got := reg.Snapshot().Gauges["service_rank_inflight"]; got != 2 {
		t.Errorf("inflight gauge = %d, want 2", got)
	}
	t1.Release()
	t2.Release()
	if got := reg.Snapshot().Gauges["service_rank_inflight"]; got != 0 {
		t.Errorf("inflight gauge after releases = %d, want 0", got)
	}
}
