// Package admission implements load shedding for the query-serving path:
// a gate in front of rank handlers that bounds concurrency, degrades
// result depth under pressure, and sheds with 429 + Retry-After when the
// server is past what it can absorb (DESIGN.md §14).
//
// The policy is deliberately boring and deterministic:
//
//   - A hard in-flight cap (MaxInFlight): request n+1 is shed while n are
//     executing. This is the backstop that keeps queue time — the silent
//     killer of tail latency in a closed system — from forming at all.
//   - Graceful degradation (DegradeAt/DegradeK): past a softer in-flight
//     depth, rank requests are still admitted but their k is clamped, so
//     the server sheds work (result materialization, fusion width) before
//     it sheds requests.
//   - Latency shedding (MaxP99): when the windowed p99 of recently
//     completed requests exceeds the bound, new arrivals are shed while
//     the backlog drains. The window (telemetry.Window) forgets, so the
//     gate reopens as soon as observed latency recovers; and the check
//     only applies while other requests are in flight — an idle server
//     always admits, which both prevents a stale window from wedging the
//     gate shut and gives it fresh observations to recover with.
//
// Every threshold is off by default; a Gate with a zero Config (or a nil
// *Gate) admits everything untouched. The gate is cheap enough for the
// per-request path: one atomic add per admit/release plus an amortized
// windowed-quantile lookup when MaxP99 is set.
package admission

import (
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Config sets the gate's thresholds. The zero value disables every
// mechanism (Enabled reports false and New returns a nil gate that admits
// everything).
type Config struct {
	// MaxInFlight is the hard concurrency cap: an arrival that would push
	// the in-flight count past it is shed. 0 disables the cap.
	MaxInFlight int
	// DegradeAt is the in-flight depth at (and past) which admitted rank
	// requests have their k clamped to DegradeK. 0 disables degradation.
	DegradeAt int
	// DegradeK is the clamped result depth under degradation (default 10
	// when DegradeAt is set).
	DegradeK int
	// MaxP99 sheds arrivals while the windowed p99 of recently completed
	// requests exceeds it and at least one request is already in flight.
	// 0 disables latency shedding.
	MaxP99 time.Duration
	// Window is the latency window size in observations (default 256).
	Window int
	// RetryAfter is the hint sent to shed clients in the Retry-After
	// header (default 1s, rounded up to whole seconds).
	RetryAfter time.Duration
}

// Enabled reports whether any admission mechanism is configured.
func (c Config) Enabled() bool {
	return c.MaxInFlight > 0 || c.DegradeAt > 0 || c.MaxP99 > 0
}

func (c Config) withDefaults() Config {
	if c.DegradeAt > 0 && c.DegradeK <= 0 {
		c.DegradeK = 10
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Gate is an admission controller for one serving surface. Create it with
// New; all methods are safe for concurrent use, and all methods on a nil
// *Gate are no-ops that admit everything — callers keep a single code
// path whether admission is configured or not.
type Gate struct {
	cfg    Config
	window *telemetry.Window
	now    func() time.Time

	// n is the authoritative in-flight count; the gauge mirrors it so the
	// shedding decision never depends on whether telemetry is installed.
	n        atomic.Int64
	inflight *telemetry.Gauge
	shedCap  *telemetry.Counter
	shedP99  *telemetry.Counter
	degraded *telemetry.Counter
	admitted *telemetry.Counter
}

// New builds a gate whose telemetry lands in reg under the given metric
// prefix ("service", "cluster"): <prefix>_rank_inflight (gauge, the queue
// depth the shedding policy keys off), <prefix>_shed_total{reason=...}
// (capacity vs latency sheds), <prefix>_degraded_total, and
// <prefix>_admitted_total. A zero config returns nil: the nil gate is the
// disabled gate.
func New(cfg Config, reg *telemetry.Registry, prefix string) *Gate {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.withDefaults()
	return &Gate{
		cfg:      cfg,
		window:   telemetry.NewWindow(cfg.Window),
		now:      time.Now,
		inflight: reg.Gauge(prefix + "_rank_inflight"),
		shedCap:  reg.Counter(prefix + `_shed_total{reason="inflight"}`),
		shedP99:  reg.Counter(prefix + `_shed_total{reason="p99"}`),
		degraded: reg.Counter(prefix + "_degraded_total"),
		admitted: reg.Counter(prefix + "_admitted_total"),
	}
}

// SetClock replaces the gate's wall clock for deterministic tests.
func (g *Gate) SetClock(fn func() time.Time) {
	if g != nil && fn != nil {
		g.now = fn
	}
}

// Ticket is one admitted request's pass through the gate. The zero-value
// semantics mirror the nil gate: a nil *Ticket clamps nothing and its
// Release is a no-op, so handlers can unconditionally defer Release.
type Ticket struct {
	g        *Gate
	start    time.Time
	degraded bool
}

// Admit decides one arrival. ok=false means shed: the caller answers 429
// with RetryAfterSeconds and must NOT call Release (the arrival was never
// counted in flight). ok=true hands back a ticket the caller must Release
// exactly once when the request finishes.
func (g *Gate) Admit() (t *Ticket, ok bool) {
	if g == nil {
		return nil, true
	}
	n := g.n.Add(1)
	if g.cfg.MaxInFlight > 0 && n > int64(g.cfg.MaxInFlight) {
		g.n.Add(-1)
		g.shedCap.Inc()
		return nil, false
	}
	// Latency shedding applies only when this arrival has company: with
	// n == 1 the server is idle, and admitting is both safe (nothing to
	// protect) and necessary (the window needs fresh observations to ever
	// report recovery).
	if g.cfg.MaxP99 > 0 && n > 1 && g.window.Quantile(0.99) > g.cfg.MaxP99.Seconds() {
		g.n.Add(-1)
		g.shedP99.Inc()
		return nil, false
	}
	g.inflight.Set(n)
	degraded := g.cfg.DegradeAt > 0 && n >= int64(g.cfg.DegradeAt)
	if degraded {
		g.degraded.Inc()
	}
	g.admitted.Inc()
	return &Ticket{g: g, start: g.now(), degraded: degraded}, true
}

// RetryAfterSeconds is the whole-second Retry-After hint for shed
// responses (at least 1).
func (g *Gate) RetryAfterSeconds() int {
	if g == nil {
		return 1
	}
	secs := int((g.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// ClampK applies degradation to a rank request's k: under pressure, any
// request asking for more than DegradeK rows (or for everything, k <= 0)
// is clamped to DegradeK. Outside degradation k passes through.
func (t *Ticket) ClampK(k int) int {
	if t == nil || !t.degraded {
		return k
	}
	if limit := t.g.cfg.DegradeK; k <= 0 || k > limit {
		return limit
	}
	return k
}

// Degraded reports whether this request was admitted under degradation.
func (t *Ticket) Degraded() bool { return t != nil && t.degraded }

// Release ends the request: the in-flight count drops and the request's
// latency feeds the shedding window. Call exactly once per admitted
// ticket; a nil ticket (from a nil gate) is a no-op.
func (t *Ticket) Release() {
	if t == nil {
		return
	}
	t.g.window.Observe(t.g.now().Sub(t.start).Seconds())
	t.g.inflight.Set(t.g.n.Add(-1))
}

// InFlight returns the current in-flight count (tests and debugging).
func (g *Gate) InFlight() int64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}
