package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/langmodel"
	"repro/internal/metrics"
	"repro/internal/randx"
)

// testProfile returns a small but non-trivial corpus for sampler tests.
func testProfile(docs int, seed uint64) corpus.Profile {
	return corpus.Profile{
		Name:            "sampletest",
		Docs:            docs,
		SharedVocabSize: 800,
		SharedProb:      0.5,
		Topics: []corpus.TopicSpec{
			{Name: "alpha", VocabSize: 3000, Weight: 1},
			{Name: "beta", VocabSize: 3000, Weight: 1},
		},
		DocLenMu:    4.0,
		DocLenSigma: 0.5,
		MinDocLen:   10,
		ZipfS:       1.35,
		ZipfV:       2,
		MorphProb:   0.1,
		Seed:        seed,
	}
}

func testDB(t testing.TB, docs int) (*index.Index, *langmodel.Model) {
	t.Helper()
	cdocs, err := testProfile(docs, 7).Generate()
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(cdocs, analysis.Database(), index.InQuery)
	return ix, ix.LanguageModel()
}

func TestSampleReachesStopCondition(t *testing.T) {
	ix, actual := testDB(t, 400)
	cfg := DefaultConfig(actual, 100, 11)
	res, err := Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Docs < 100 {
		t.Errorf("sampled %d docs, want >= 100", res.Docs)
	}
	if res.Exhausted {
		t.Error("run reported exhausted")
	}
	if res.Learned.Docs() != res.Docs {
		t.Errorf("learned model docs %d != result docs %d", res.Learned.Docs(), res.Docs)
	}
	if res.Queries == 0 {
		t.Error("no queries issued")
	}
}

func TestSampleDeterministic(t *testing.T) {
	ix, actual := testDB(t, 300)
	cfg := DefaultConfig(actual, 80, 42)
	a, err := Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Queries != b.Queries || a.Docs != b.Docs {
		t.Fatalf("runs differ: %d/%d queries, %d/%d docs", a.Queries, b.Queries, a.Docs, b.Docs)
	}
	if !a.Learned.Equal(b.Learned) {
		t.Error("learned models differ across identical runs")
	}
}

func TestSampleSeedMatters(t *testing.T) {
	ix, actual := testDB(t, 300)
	a, err := Sample(ix, DefaultConfig(actual, 80, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(ix, DefaultConfig(actual, 80, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Learned.Equal(b.Learned) {
		t.Error("different seeds produced identical samples (suspicious)")
	}
}

func TestSampleLearnsAccurateModel(t *testing.T) {
	// The headline claim: a modest sample covers most term occurrences.
	ix, actual := testDB(t, 500)
	res, err := Sample(ix, DefaultConfig(actual, 150, 3))
	if err != nil {
		t.Fatal(err)
	}
	learned := res.Learned.Normalize(analysis.Database())
	if r := metrics.CtfRatio(learned, actual); r < 0.6 {
		t.Errorf("ctf ratio after 150/500 docs = %f, want > 0.6", r)
	}
	if s := metrics.Spearman(learned, actual, langmodel.ByDF); s < 0.3 {
		t.Errorf("Spearman after 150/500 docs = %f, want > 0.3", s)
	}
}

func TestSampleSnapshots(t *testing.T) {
	ix, actual := testDB(t, 300)
	cfg := DefaultConfig(actual, 120, 5)
	cfg.SnapshotEvery = 50
	res, err := Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) < 2 {
		t.Fatalf("got %d snapshots, want >= 2", len(res.Snapshots))
	}
	for i, s := range res.Snapshots {
		if s.Docs < 50*(i+1) {
			t.Errorf("snapshot %d at %d docs, want >= %d", i, s.Docs, 50*(i+1))
		}
		if s.Model.Docs() != s.Docs {
			t.Errorf("snapshot %d model docs %d != %d", i, s.Model.Docs(), s.Docs)
		}
		if i > 0 && res.Snapshots[i-1].Docs >= s.Docs {
			t.Error("snapshots not increasing")
		}
	}
	// Snapshots must be frozen copies: the final model has more docs.
	if res.Snapshots[0].Model.Docs() >= res.Learned.Docs() {
		t.Error("early snapshot not frozen")
	}
}

func TestSampleDocsPerQueryLimitsYield(t *testing.T) {
	ix, actual := testDB(t, 300)
	cfg := DefaultConfig(actual, 60, 9)
	cfg.DocsPerQuery = 2
	res, err := Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Docs > res.Queries*2 {
		t.Errorf("%d docs from %d queries at N=2", res.Docs, res.Queries)
	}
}

func TestSampleInitialTerm(t *testing.T) {
	ix, actual := testDB(t, 200)
	first := actual.TopTerms(langmodel.ByDF, 1)[0]
	cfg := DefaultConfig(nil, 20, 1)
	cfg.InitialModel = nil
	cfg.InitialTerm = first
	res, err := Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Docs == 0 {
		t.Error("nothing sampled from explicit initial term")
	}
}

func TestSampleOLMCountsFailedQueries(t *testing.T) {
	ix, actual := testDB(t, 300)
	// An "other" model full of terms the database does not index.
	other := actual.Clone()
	for i := 0; i < 2000; i++ {
		other.AddTerm("zzqx"+string(rune('a'+i%26))+string(rune('a'+(i/26)%26))+string(rune('a'+(i/676)%26)), langmodel.TermStats{DF: 1, CTF: 1})
	}
	cfg := DefaultConfig(actual, 60, 13)
	cfg.Selector = RandomOLM{Other: other}
	res, err := Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedQueries == 0 {
		t.Error("expected failed queries from unknown olm terms")
	}
	// Failed queries inflate the total (Table 3's phenomenon).
	if res.Queries <= res.Docs/cfg.DocsPerQuery {
		t.Errorf("query count %d suspiciously low for %d docs", res.Queries, res.Docs)
	}
}

func TestSampleExhaustsTinyDatabase(t *testing.T) {
	// A database with 3 trivial docs cannot yield 1000 distinct documents;
	// sampling must terminate with Exhausted rather than loop.
	ix := index.Build([]corpus.Document{
		{ID: 0, Text: "apple banana cherry"},
		{ID: 1, Text: "apple date elderberry"},
		{ID: 2, Text: "fig grape apple"},
	}, analysis.Raw(), index.InQuery)
	cfg := Config{
		DocsPerQuery: 4,
		Selector:     RandomLLM{},
		Stop:         StopAfterDocs(1000),
		InitialTerm:  "apple",
		Analyzer:     analysis.Raw(),
		Seed:         1,
	}
	res, err := Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Error("expected exhaustion")
	}
	if res.Docs != 3 {
		t.Errorf("sampled %d docs, want 3", res.Docs)
	}
}

func TestSampleMaxQueries(t *testing.T) {
	ix, actual := testDB(t, 300)
	cfg := DefaultConfig(actual, 1000000, 1)
	cfg.MaxQueries = 5
	res, err := Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries > 5 {
		t.Errorf("issued %d queries, cap was 5", res.Queries)
	}
	if !res.Exhausted {
		t.Error("hitting MaxQueries should report Exhausted")
	}
}

func TestResumeContinuesSampling(t *testing.T) {
	ix, actual := testDB(t, 500)
	cfg := DefaultConfig(actual, 100, 17)
	first, err := Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Docs < 100 {
		t.Fatalf("first run sampled %d docs", first.Docs)
	}

	// Continue to 200 documents. Counters include the first run.
	cfg2 := cfg
	cfg2.Stop = StopAfterDocs(200)
	cfg2.Seed = 18
	second, err := Resume(ix, cfg2, first)
	if err != nil {
		t.Fatal(err)
	}
	if second.Docs < 200 {
		t.Errorf("resumed run reached only %d docs", second.Docs)
	}
	if second.Queries <= first.Queries {
		t.Error("resumed run issued no new queries")
	}
	// No document examined twice.
	seen := map[int]bool{}
	for _, id := range second.DocIDs {
		if seen[id] {
			t.Fatalf("document %d sampled twice across resume", id)
		}
		seen[id] = true
	}
	// No query term reused.
	usedTerms := map[string]bool{}
	for _, q := range second.QueryTerms {
		if usedTerms[q] {
			t.Fatalf("query %q reissued across resume", q)
		}
		usedTerms[q] = true
	}
	// The learned model grew and subsumes the first run's documents.
	if second.Learned.Docs() != second.Docs {
		t.Errorf("learned docs %d != %d", second.Learned.Docs(), second.Docs)
	}
	// prev untouched.
	if first.Docs >= 200 || first.Learned.Docs() >= 200 {
		t.Error("Resume mutated the previous result")
	}

	// Accuracy improves with the bigger sample (the §5 claim).
	normFirst := first.Learned.Normalize(analysis.Database())
	normSecond := second.Learned.Normalize(analysis.Database())
	if metrics.CtfRatio(normSecond, actual) <= metrics.CtfRatio(normFirst, actual) {
		t.Error("continued sampling did not improve ctf ratio")
	}
}

func TestResumeRequiresPrev(t *testing.T) {
	ix, actual := testDB(t, 50)
	if _, err := Resume(ix, DefaultConfig(actual, 10, 1), nil); err == nil {
		t.Error("Resume accepted nil previous result")
	}
}

func TestResumeSnapshotsContinue(t *testing.T) {
	ix, actual := testDB(t, 400)
	cfg := DefaultConfig(actual, 100, 23)
	first, err := Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Stop = StopAfterDocs(200)
	second, err := Resume(ix, cfg2, first)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Snapshots) <= len(first.Snapshots) {
		t.Fatalf("no new snapshots: %d -> %d", len(first.Snapshots), len(second.Snapshots))
	}
	for i := 1; i < len(second.Snapshots); i++ {
		if second.Snapshots[i].Docs <= second.Snapshots[i-1].Docs {
			t.Fatal("snapshot positions not increasing across resume")
		}
	}
}

func TestQueryTermsRecorded(t *testing.T) {
	ix, actual := testDB(t, 100)
	res, err := Sample(ix, DefaultConfig(actual, 30, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QueryTerms) != res.Queries {
		t.Errorf("%d query terms for %d queries", len(res.QueryTerms), res.Queries)
	}
}

func TestSampleOnQueryTrace(t *testing.T) {
	ix, actual := testDB(t, 200)
	cfg := DefaultConfig(actual, 40, 3)
	var events []Event
	cfg.OnQuery = func(e Event) {
		// Strip the live model pointer before retaining.
		e.Learned = nil
		events = append(events, e)
	}
	res, err := Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.Queries {
		t.Fatalf("got %d events for %d queries", len(events), res.Queries)
	}
	last := events[len(events)-1]
	if last.TotalDocs != res.Docs || last.TotalQueries != res.Queries {
		t.Errorf("final event counters %+v disagree with result %d/%d",
			last, res.Docs, res.Queries)
	}
	for i, e := range events {
		if e.Query == "" {
			t.Errorf("event %d has empty query", i)
		}
		if e.NewDocs > e.Hits {
			t.Errorf("event %d: new docs %d > hits %d", i, e.NewDocs, e.Hits)
		}
		if i > 0 && e.TotalQueries != events[i-1].TotalQueries+1 {
			t.Errorf("event %d: query counter not monotone", i)
		}
	}
}

func TestSampleConfigValidation(t *testing.T) {
	ix, actual := testDB(t, 50)
	bad := []Config{
		{},
		{DocsPerQuery: 4, Selector: RandomLLM{}, Stop: StopAfterDocs(10)}, // no initial
		{DocsPerQuery: 0, Selector: RandomLLM{}, Stop: StopAfterDocs(10), InitialModel: actual},
		{DocsPerQuery: 4, Stop: StopAfterDocs(10), InitialModel: actual},
		{DocsPerQuery: 4, Selector: RandomLLM{}, InitialModel: actual},
		{DocsPerQuery: 4, Selector: RandomLLM{}, Stop: StopAfterDocs(10),
			InitialModel: actual, InitialTerm: "also-set"},
	}
	for i, cfg := range bad {
		if _, err := Sample(ix, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// failDB injects errors.
type failDB struct {
	searchErr error
	fetchErr  error
}

func (f failDB) Search(string, int) ([]int, error) {
	if f.searchErr != nil {
		return nil, f.searchErr
	}
	return []int{0}, nil
}

func (f failDB) Fetch(int) (corpus.Document, error) {
	if f.fetchErr != nil {
		return corpus.Document{}, f.fetchErr
	}
	return corpus.Document{Text: "x"}, nil
}

func TestSamplePropagatesSearchError(t *testing.T) {
	sentinel := errors.New("search down")
	cfg := Config{
		DocsPerQuery: 4, Selector: RandomLLM{}, Stop: StopAfterDocs(10),
		InitialTerm: "apple", Seed: 1,
	}
	_, err := Sample(failDB{searchErr: sentinel}, cfg)
	if !errors.Is(err, sentinel) {
		t.Errorf("got %v, want wrapped sentinel", err)
	}
}

func TestSamplePropagatesFetchError(t *testing.T) {
	sentinel := errors.New("fetch down")
	cfg := Config{
		DocsPerQuery: 4, Selector: RandomLLM{}, Stop: StopAfterDocs(10),
		InitialTerm: "apple", Seed: 1,
	}
	_, err := Sample(failDB{fetchErr: sentinel}, cfg)
	if !errors.Is(err, sentinel) {
		t.Errorf("got %v, want wrapped sentinel", err)
	}
}

func TestEligible(t *testing.T) {
	used := map[string]bool{"taken": true}
	cases := []struct {
		term string
		want bool
	}{
		{"apple", true},
		{"ab", false},    // too short
		{"123", false},   // number
		{"1234", false},  // number
		{"taken", false}, // already used
		{"a1b", true},    // mixed is fine
		{"", false},      // empty
		{"the", true},    // stopwords are eligible query terms (raw LM keeps them)
	}
	for _, c := range cases {
		if got := Eligible(c.term, used); got != c.want {
			t.Errorf("Eligible(%q) = %v, want %v", c.term, got, c.want)
		}
	}
}

func TestRandomLLMNeverReturnsIneligible(t *testing.T) {
	m := langmodel.New()
	m.AddDocument([]string{"apple", "it", "42", "banana", "fig"})
	used := map[string]bool{"apple": true}
	rng := randx.New(5)
	sel := RandomLLM{}
	for i := 0; i < 200; i++ {
		term, ok := sel.Next(m, used, rng)
		if !ok {
			t.Fatal("selector gave up with candidates remaining")
		}
		if !Eligible(term, used) {
			t.Fatalf("selector returned ineligible term %q", term)
		}
	}
}

func TestRandomLLMExhaustion(t *testing.T) {
	m := langmodel.New()
	m.AddDocument([]string{"apple", "banana"})
	used := map[string]bool{"apple": true, "banana": true}
	if _, ok := (RandomLLM{}).Next(m, used, randx.New(1)); ok {
		t.Error("selector should be exhausted")
	}
	if _, ok := (RandomLLM{}).Next(langmodel.New(), nil, randx.New(1)); ok {
		t.Error("empty model should exhaust selector")
	}
}

func TestFrequencyLLMPicksHighest(t *testing.T) {
	m := langmodel.New()
	m.AddTerm("common", langmodel.TermStats{DF: 100, CTF: 200})
	m.AddTerm("middle", langmodel.TermStats{DF: 50, CTF: 500})
	m.AddTerm("rare", langmodel.TermStats{DF: 1, CTF: 1000})
	used := map[string]bool{}
	rng := randx.New(1)

	if term, _ := (FrequencyLLM{Metric: langmodel.ByDF}).Next(m, used, rng); term != "common" {
		t.Errorf("df selector chose %q, want common", term)
	}
	if term, _ := (FrequencyLLM{Metric: langmodel.ByCTF}).Next(m, used, rng); term != "rare" {
		t.Errorf("ctf selector chose %q, want rare", term)
	}
	if term, _ := (FrequencyLLM{Metric: langmodel.ByAvgTF}).Next(m, used, rng); term != "rare" {
		t.Errorf("avg-tf selector chose %q, want rare", term)
	}

	used["common"] = true
	if term, _ := (FrequencyLLM{Metric: langmodel.ByDF}).Next(m, used, rng); term != "middle" {
		t.Errorf("df selector with common used chose %q, want middle", term)
	}
}

func TestFrequencyLLMDeterministicTieBreak(t *testing.T) {
	m := langmodel.New()
	m.AddTerm("zebra", langmodel.TermStats{DF: 5, CTF: 5})
	m.AddTerm("apple", langmodel.TermStats{DF: 5, CTF: 5})
	for i := 0; i < 10; i++ {
		term, _ := (FrequencyLLM{Metric: langmodel.ByDF}).Next(m, map[string]bool{}, randx.New(uint64(i)))
		if term != "apple" {
			t.Fatalf("tie broke to %q, want apple (alphabetical)", term)
		}
	}
}

func TestSelectorNames(t *testing.T) {
	names := map[string]TermSelector{
		"random-llm": RandomLLM{},
		"random-olm": RandomOLM{},
		"df-llm":     FrequencyLLM{Metric: langmodel.ByDF},
		"ctf-llm":    FrequencyLLM{Metric: langmodel.ByCTF},
		"avg-tf-llm": FrequencyLLM{Metric: langmodel.ByAvgTF},
	}
	for want, sel := range names {
		if got := sel.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestStopConditions(t *testing.T) {
	st := &State{Docs: 100, Queries: 25}
	if !StopAfterDocs(100).Done(st) || StopAfterDocs(101).Done(st) {
		t.Error("StopAfterDocs wrong")
	}
	if !StopAfterQueries(25).Done(st) || StopAfterQueries(26).Done(st) {
		t.Error("StopAfterQueries wrong")
	}
	any := StopAny(StopAfterDocs(1000), StopAfterQueries(25))
	if !any.Done(st) {
		t.Error("StopAny should fire on second condition")
	}
	if StopAny().Done(st) {
		t.Error("empty StopAny should never fire")
	}
	if !strings.Contains(any.Name(), "after-25-queries") {
		t.Errorf("StopAny name = %q", any.Name())
	}
}

func TestStopWhenConverged(t *testing.T) {
	mkModel := func(dfs ...int) *langmodel.Model {
		m := langmodel.New()
		for i, df := range dfs {
			m.AddTerm("term"+string(rune('a'+i)), langmodel.TermStats{DF: df, CTF: int64(df)})
		}
		return m
	}
	stable := mkModel(10, 8, 6, 4, 2)
	moved := mkModel(2, 4, 6, 8, 10) // reversed ranking

	// The condition caches its verdict per snapshot count (real runs only
	// grow the snapshot list), so each scenario gets a fresh condition.
	cond := StopWhenConverged(0.01, 2, langmodel.ByDF)
	// Not enough snapshots.
	st := &State{Snapshots: []Snapshot{{Model: stable}}}
	if cond.Done(st) {
		t.Error("fired with one snapshot")
	}
	// Three identical snapshots: rdiff 0 twice -> converged.
	st.Snapshots = []Snapshot{{Model: stable}, {Model: stable.Clone()}, {Model: stable.Clone()}}
	if !cond.Done(st) {
		t.Error("did not fire on identical snapshots")
	}
	// Large movement in the last span -> not converged.
	cond = StopWhenConverged(0.01, 2, langmodel.ByDF)
	st.Snapshots = []Snapshot{{Model: stable}, {Model: stable.Clone()}, {Model: moved}}
	if cond.Done(st) {
		t.Error("fired despite ranking upheaval")
	}
	if !strings.Contains(cond.Name(), "rdiff") {
		t.Errorf("name = %q", cond.Name())
	}
}

func TestStopWhenConvergedEndsRun(t *testing.T) {
	ix, actual := testDB(t, 500)
	cfg := DefaultConfig(actual, 0, 21)
	cfg.Stop = StopAny(
		StopWhenConverged(0.02, 2, langmodel.ByDF),
		StopAfterDocs(450),
	)
	res, err := Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Docs == 0 {
		t.Fatal("no docs sampled")
	}
	if res.Exhausted {
		t.Error("converged run reported exhausted")
	}
}

func BenchmarkSample100Docs(b *testing.B) {
	cdocs := testProfile(1000, 7).MustGenerate()
	ix := index.Build(cdocs, analysis.Database(), index.InQuery)
	actual := ix.LanguageModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sample(ix, DefaultConfig(actual, 100, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
