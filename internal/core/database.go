// Package core implements query-based sampling, the paper's contribution
// (§3): learning a language model for a text database by running simple
// queries against its ordinary search interface and folding the retrieved
// documents into a learned model.
//
// The algorithm (§3):
//
//  1. Select an initial query term.
//  2. Run a one-term query on the database.
//  3. Retrieve the top N documents returned.
//  4. Update the language model from the retrieved documents.
//  5. If the stopping criterion is not reached, select a new query term
//     and go to step 2.
//
// The sampler needs nothing from the database beyond Search and Fetch —
// the "minimal criterion that we assume any database can satisfy". No
// cooperation, no exported statistics, no shared indexing conventions.
package core

import "repro/internal/corpus"

// Database is the minimal interface a searchable text database must
// provide: run a query and return ranked document ids, and fetch a
// document's text by id. internal/index implements it locally and
// internal/netsearch implements it across a TCP connection.
type Database interface {
	// Search runs a free-text query and returns the ids of the top n
	// documents, best first. An empty result is not an error: it is a
	// failed query (a term the database does not index).
	Search(query string, n int) ([]int, error)
	// Fetch returns the full text of a previously returned document.
	Fetch(id int) (corpus.Document, error)
}
