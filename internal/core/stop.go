package core

import (
	"fmt"

	"repro/internal/langmodel"
	"repro/internal/metrics"
)

// State is what a StopCondition may inspect after each query round.
type State struct {
	// Docs is the number of distinct documents examined so far.
	Docs int
	// Queries is the number of queries issued so far.
	Queries int
	// Learned is the learned model so far (read-only for conditions).
	Learned *langmodel.Model
	// Snapshots holds the periodic model snapshots (Config.SnapshotEvery).
	Snapshots []Snapshot
}

// StopCondition decides when sampling is finished (§6).
type StopCondition interface {
	// Name identifies the criterion in reports.
	Name() string
	// Done reports whether sampling should stop.
	Done(s *State) bool
}

// StopAfterDocs stops once n distinct documents have been examined — the
// fixed-size criterion the paper uses for its main experiments (300 docs
// for CACM and WSJ88, 500 for TREC-123, §4.4).
func StopAfterDocs(n int) StopCondition { return stopDocs(n) }

type stopDocs int

func (s stopDocs) Name() string        { return fmt.Sprintf("after-%d-docs", int(s)) }
func (s stopDocs) Done(st *State) bool { return st.Docs >= int(s) }

// StopAfterQueries stops once n queries have been issued, regardless of
// yield. Useful as a budget cap when sampling priced services.
func StopAfterQueries(n int) StopCondition { return stopQueries(n) }

type stopQueries int

func (s stopQueries) Name() string        { return fmt.Sprintf("after-%d-queries", int(s)) }
func (s stopQueries) Done(st *State) bool { return st.Queries >= int(s) }

// StopWhenConverged implements the §6 proposal: stop when the learned
// model's ranking stops moving — rdiff between consecutive model snapshots
// stays below Threshold for Spans consecutive snapshot intervals. It
// requires Config.SnapshotEvery > 0 (rdiff is measured between snapshots).
//
// The paper suggests "rdiff < 0.005 over 2 consecutive 50 document spans"
// as a plausible setting.
func StopWhenConverged(threshold float64, spans int, metric langmodel.RankMetric) StopCondition {
	if spans < 1 {
		spans = 1
	}
	return &stopConverged{threshold: threshold, spans: spans, metric: metric}
}

type stopConverged struct {
	threshold float64
	spans     int
	metric    langmodel.RankMetric

	// Done is called after every query but snapshots only appear every
	// SnapshotEvery documents; cache the verdict per snapshot count.
	checkedAt int
	verdict   bool
}

func (s *stopConverged) Name() string {
	return fmt.Sprintf("rdiff<%g-for-%d-spans", s.threshold, s.spans)
}

func (s *stopConverged) Done(st *State) bool {
	if len(st.Snapshots) < s.spans+1 {
		return false
	}
	if len(st.Snapshots) == s.checkedAt {
		return s.verdict
	}
	s.checkedAt = len(st.Snapshots)
	s.verdict = true
	snaps := st.Snapshots[len(st.Snapshots)-(s.spans+1):]
	for i := 1; i < len(snaps); i++ {
		if metrics.Rdiff(snaps[i-1].Model, snaps[i].Model, s.metric) >= s.threshold {
			s.verdict = false
			break
		}
	}
	return s.verdict
}

// StopAny stops as soon as any of the given conditions is satisfied.
// Typical use: StopAny(StopWhenConverged(...), StopAfterDocs(5000)) — a
// convergence rule with a hard budget backstop.
func StopAny(conds ...StopCondition) StopCondition { return stopAny(conds) }

type stopAny []StopCondition

func (s stopAny) Name() string {
	name := "any("
	for i, c := range s {
		if i > 0 {
			name += ", "
		}
		name += c.Name()
	}
	return name + ")"
}

func (s stopAny) Done(st *State) bool {
	for _, c := range s {
		if c.Done(st) {
			return true
		}
	}
	return false
}
