package core_test

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
)

// ExampleSample shows the minimal sampling loop: a database we "don't
// control", reached only through its search interface, and a learned
// language model built from a handful of retrieved documents.
func ExampleSample() {
	db := index.Build([]corpus.Document{
		{ID: 0, Text: "apple pie with baked apple slices"},
		{ID: 1, Text: "apple orchards and cider presses"},
		{ID: 2, Text: "pressing cider from fresh apple harvests"},
		{ID: 3, Text: "baking bread with sourdough starters"},
	}, analysis.Raw(), index.InQuery)

	res, err := core.Sample(db, core.Config{
		DocsPerQuery: 2,
		Selector:     core.RandomLLM{},
		Stop:         core.StopAfterDocs(4),
		InitialTerm:  "apple",
		Seed:         7,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("documents sampled:", res.Docs)
	fmt.Println("df(apple) in learned model:", res.Learned.DF("apple"))
	// Output:
	// documents sampled: 4
	// df(apple) in learned model: 3
}

// ExampleStopWhenConverged shows the §6 stopping rule composed with a
// hard budget backstop.
func ExampleStopWhenConverged() {
	stop := core.StopAny(
		core.StopWhenConverged(0.005, 2, 0 /* langmodel.ByDF */),
		core.StopAfterDocs(5000),
	)
	fmt.Println(stop.Name())
	// Output:
	// any(rdiff<0.005-for-2-spans, after-5000-docs)
}
