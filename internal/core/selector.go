package core

import (
	"repro/internal/analysis"
	"repro/internal/langmodel"
	"repro/internal/randx"
)

// TermSelector chooses the next query term (step 5a of the algorithm).
// Implementations receive the learned model so far and the set of terms
// already used as queries; they must not return a used term.
type TermSelector interface {
	// Name identifies the strategy in reports (Figure 3, Table 3 rows).
	Name() string
	// Next returns the next query term, or ok=false when the strategy has
	// no eligible term left.
	Next(learned *langmodel.Model, used map[string]bool, rng *randx.Source) (term string, ok bool)
}

// Eligible implements the paper's query-term requirements (§4.4): a term
// "could not be a number and was required to be 3 or more characters
// long". Terms already issued as queries are also ineligible — re-running
// a query returns the same documents and learns nothing.
func Eligible(term string, used map[string]bool) bool {
	if len(term) < 3 || analysis.IsNumber(term) || used[term] {
		return false
	}
	return true
}

// RandomLLM selects query terms uniformly at random from the learned
// language model — the paper's baseline and empirically best strategy
// (§5.2). The zero value is ready to use.
type RandomLLM struct{}

// Name implements TermSelector.
func (RandomLLM) Name() string { return "random-llm" }

// Next implements TermSelector.
func (RandomLLM) Next(learned *langmodel.Model, used map[string]bool, rng *randx.Source) (string, bool) {
	return randomEligible(learned, used, rng)
}

// RandomOLM selects query terms uniformly at random from an *other*
// language model — typically a complete reference model such as the
// TREC-123 model the paper uses (§5.2, "olm"). Terms the sample database
// does not index make the query fail, which is why olm needs about twice
// as many queries (Table 3).
type RandomOLM struct {
	// Other is the reference model terms are drawn from.
	Other *langmodel.Model
}

// Name implements TermSelector.
func (s RandomOLM) Name() string { return "random-olm" }

// Next implements TermSelector.
func (s RandomOLM) Next(_ *langmodel.Model, used map[string]bool, rng *randx.Source) (string, bool) {
	return randomEligible(s.Other, used, rng)
}

// FrequencyLLM selects the highest-ranked unused term of the learned model
// under a frequency metric: df, ctf, or avg-tf (§5.2's "df, llm",
// "ctf, llm" and "avg-tf, llm" strategies).
type FrequencyLLM struct {
	// Metric orders candidate terms; the highest unused eligible one wins.
	Metric langmodel.RankMetric
}

// Name implements TermSelector.
func (s FrequencyLLM) Name() string { return s.Metric.String() + "-llm" }

// Next implements TermSelector.
func (s FrequencyLLM) Next(learned *langmodel.Model, used map[string]bool, _ *randx.Source) (string, bool) {
	best, ok := "", false
	var bestV float64
	learned.Range(func(t string, st langmodel.TermStats) bool {
		if !Eligible(t, used) {
			return true
		}
		v := metricValue(s.Metric, st)
		if !ok || v > bestV || (v == bestV && t < best) {
			best, bestV, ok = t, v, true
		}
		return true
	})
	return best, ok
}

func metricValue(m langmodel.RankMetric, st langmodel.TermStats) float64 {
	switch m {
	case langmodel.ByCTF:
		return float64(st.CTF)
	case langmodel.ByAvgTF:
		return st.AvgTF()
	default:
		return float64(st.DF)
	}
}

// randomEligible draws a uniform random eligible term from the model.
// Rejection sampling over the model's insertion-ordered vocabulary keeps
// draws O(1) in the common case, with a linear fallback so exhaustion
// terminates. Both paths are deterministic for a given rng state.
func randomEligible(m *langmodel.Model, used map[string]bool, rng *randx.Source) (string, bool) {
	if m == nil || m.VocabSize() == 0 {
		return "", false
	}
	size := m.VocabSize()
	for attempts := 0; attempts < 30; attempts++ {
		t := m.TermAt(rng.Intn(size))
		if Eligible(t, used) {
			return t, true
		}
	}
	// Dense fallback: collect remaining eligible terms and pick one.
	var candidates []string
	for i := 0; i < size; i++ {
		if t := m.TermAt(i); Eligible(t, used) {
			candidates = append(candidates, t)
		}
	}
	if len(candidates) == 0 {
		return "", false
	}
	return candidates[rng.Intn(len(candidates))], true
}
