package core

import (
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/langmodel"
	"repro/internal/randx"
)

// Config parameterizes a sampling run. The zero value is not usable; see
// the field comments for required settings. DefaultConfig fills in the
// paper's baseline parameters.
type Config struct {
	// DocsPerQuery is N, the number of top-ranked documents examined per
	// query (§5.1). The paper's baseline is 4.
	DocsPerQuery int
	// Selector chooses query terms (§5.2). The baseline is RandomLLM.
	Selector TermSelector
	// Stop decides when sampling ends (§6). Required.
	Stop StopCondition
	// InitialModel supplies the first query term, drawn at random from its
	// eligible vocabulary. The paper always drew the first term from the
	// actual TREC-123 model (§4.4) and found the choice immaterial.
	// Exactly one of InitialModel and InitialTerm must be set.
	InitialModel *langmodel.Model
	// InitialTerm fixes the first query term explicitly.
	InitialTerm string
	// Analyzer is the pipeline applied to sampled documents when updating
	// the learned model. The paper builds learned models raw — no stopword
	// removal, no stemming (§4.1) — so the default is analysis.Raw().
	Analyzer analysis.Analyzer
	// SnapshotEvery, when positive, clones the learned model every that
	// many documents (the paper's metric curves are sampled at 50-document
	// intervals). Snapshots power StopWhenConverged and the experiment
	// harness.
	SnapshotEvery int
	// MaxQueries is a safety valve against databases too small or too
	// repetitive for the stop condition to be reachable. 0 means 100000.
	MaxQueries int
	// OnQuery, when non-nil, is called after every query round with a
	// trace event — the observability hook cmd/qbsample -verbose and the
	// experiment harness use. The callback must not retain Event.Learned.
	OnQuery func(Event)
	// Seed makes the run deterministic.
	Seed uint64
}

// Event describes one completed query round for tracing.
type Event struct {
	// Query is the term that was issued.
	Query string
	// Hits is how many documents the database returned.
	Hits int
	// NewDocs is how many of them had not been seen before.
	NewDocs int
	// TotalDocs and TotalQueries are running counters after this round.
	TotalDocs    int
	TotalQueries int
	// VocabSize is the learned vocabulary size after this round.
	VocabSize int
	// Learned is the live learned model (read-only; do not retain).
	Learned *langmodel.Model
}

// DefaultConfig returns the paper's baseline configuration: 4 documents
// per query, random selection from the learned model, stop after docs
// documents, snapshots every 50 documents.
func DefaultConfig(initial *langmodel.Model, docs int, seed uint64) Config {
	return Config{
		DocsPerQuery:  4,
		Selector:      RandomLLM{},
		Stop:          StopAfterDocs(docs),
		InitialModel:  initial,
		Analyzer:      analysis.Raw(),
		SnapshotEvery: 50,
		Seed:          seed,
	}
}

func (c *Config) validate(resuming bool) error {
	if c.DocsPerQuery <= 0 {
		return errors.New("core: DocsPerQuery must be positive")
	}
	if c.Selector == nil {
		return errors.New("core: Selector is required")
	}
	if c.Stop == nil {
		return errors.New("core: Stop condition is required")
	}
	if resuming {
		// A resumed run picks terms with the selector from the carried-over
		// learned model; initial-term settings are optional.
		return nil
	}
	if c.InitialTerm == "" && c.InitialModel == nil {
		return errors.New("core: need InitialTerm or InitialModel for the first query")
	}
	if c.InitialTerm != "" && c.InitialModel != nil {
		return errors.New("core: InitialTerm and InitialModel are mutually exclusive")
	}
	return nil
}

// Snapshot is a periodic frozen view of the learned model during a run.
type Snapshot struct {
	// Docs is the number of documents examined when the snapshot was taken.
	Docs int
	// Queries is the number of queries issued by then.
	Queries int
	// Model is an immutable copy-on-write view of the learned model at
	// that point (langmodel.Model.Snapshot). Treat it as read-only; call
	// Clone to get a mutable copy.
	Model *langmodel.Model
}

// Result reports a completed sampling run.
type Result struct {
	// Learned is the final learned language model.
	Learned *langmodel.Model
	// Docs is the number of distinct documents examined.
	Docs int
	// DocIDs lists the distinct documents examined, in first-seen order.
	// Size estimators (capture-recapture) need the identities, not just
	// the count.
	DocIDs []int
	// QueryTerms lists every query issued, in order. Resume uses it to
	// avoid re-running old queries; it is also a complete audit trail of
	// what the sampler asked the database.
	QueryTerms []string
	// Queries is the total number of queries issued, including failed ones
	// (Table 3 counts these).
	Queries int
	// FailedQueries is the number of queries that returned no documents —
	// terms the database does not index.
	FailedQueries int
	// ZeroNewQueries counts queries whose documents had all been seen
	// before; they cost a round-trip but add nothing to the sample.
	ZeroNewQueries int
	// Snapshots holds the periodic model snapshots, oldest first.
	Snapshots []Snapshot
	// Exhausted is true when sampling ended because no eligible query term
	// remained or MaxQueries was hit, rather than because Stop was
	// satisfied.
	Exhausted bool
}

// Sample runs query-based sampling against db. It is deterministic for a
// given (db, cfg) pair.
func Sample(db Database, cfg Config) (*Result, error) {
	return sample(db, cfg, nil)
}

// Resume continues a previous run against the same database: the learned
// model, examined documents, and issued queries of prev are carried over,
// and sampling proceeds until cfg.Stop is satisfied (counters include the
// previous run, so e.g. StopAfterDocs(800) after a 500-document run
// samples 300 more). The paper relies on exactly this property: "sampling
// can be continued to reach whatever level of correlation is required"
// (§5). prev is not modified.
func Resume(db Database, cfg Config, prev *Result) (*Result, error) {
	if prev == nil {
		return nil, errors.New("core: Resume requires a previous result")
	}
	return sample(db, cfg, prev)
}

func sample(db Database, cfg Config, prev *Result) (*Result, error) {
	if err := cfg.validate(prev != nil); err != nil {
		return nil, err
	}
	maxQueries := cfg.MaxQueries
	if maxQueries == 0 {
		maxQueries = 100000
	}
	rng := randx.New(cfg.Seed)
	learned := langmodel.New()
	used := make(map[string]bool)
	seenDocs := make(map[int]bool)
	res := &Result{Learned: learned}
	if prev != nil {
		learned = prev.Learned.Clone()
		res.Learned = learned
		res.Docs = prev.Docs
		res.DocIDs = append(res.DocIDs, prev.DocIDs...)
		res.Queries = prev.Queries
		res.FailedQueries = prev.FailedQueries
		res.ZeroNewQueries = prev.ZeroNewQueries
		res.QueryTerms = append(res.QueryTerms, prev.QueryTerms...)
		res.Snapshots = append(res.Snapshots, prev.Snapshots...)
		for _, id := range prev.DocIDs {
			seenDocs[id] = true
		}
		for _, t := range prev.QueryTerms {
			used[t] = true
		}
	}
	state := &State{Learned: learned}
	nextSnapshot := cfg.SnapshotEvery
	if cfg.SnapshotEvery > 0 {
		for nextSnapshot <= res.Docs {
			nextSnapshot += cfg.SnapshotEvery
		}
	}

	// The first query term comes from the initial model or is fixed; a
	// resumed run continues with the configured selector instead.
	var term string
	ok := true
	switch {
	case prev != nil:
		term, ok = cfg.Selector.Next(learned, used, rng)
		if !ok && cfg.InitialModel != nil {
			term, ok = randomEligible(cfg.InitialModel, used, rng)
		}
		if !ok {
			res.Exhausted = true
			return res, nil
		}
	case cfg.InitialTerm != "":
		term = cfg.InitialTerm
	default:
		term, ok = randomEligible(cfg.InitialModel, used, rng)
		if !ok {
			return nil, errors.New("core: initial model has no eligible query term")
		}
	}

	for {
		used[term] = true
		res.QueryTerms = append(res.QueryTerms, term)
		hits, err := db.Search(term, cfg.DocsPerQuery)
		if err != nil {
			return nil, fmt.Errorf("core: query %q: %w", term, err)
		}
		res.Queries++
		if len(hits) == 0 {
			res.FailedQueries++
		}
		newDocs := 0
		for _, id := range hits {
			if seenDocs[id] {
				continue
			}
			seenDocs[id] = true
			res.DocIDs = append(res.DocIDs, id)
			doc, err := db.Fetch(id)
			if err != nil {
				return nil, fmt.Errorf("core: fetch %d: %w", id, err)
			}
			learned.AddDocument(cfg.Analyzer.Tokens(doc.Text))
			newDocs++
			res.Docs++
			if cfg.SnapshotEvery > 0 && res.Docs >= nextSnapshot {
				res.Snapshots = append(res.Snapshots, Snapshot{
					Docs:    res.Docs,
					Queries: res.Queries,
					Model:   learned.Snapshot(),
				})
				nextSnapshot += cfg.SnapshotEvery
			}
		}
		if len(hits) > 0 && newDocs == 0 {
			res.ZeroNewQueries++
		}
		if cfg.OnQuery != nil {
			cfg.OnQuery(Event{
				Query:        term,
				Hits:         len(hits),
				NewDocs:      newDocs,
				TotalDocs:    res.Docs,
				TotalQueries: res.Queries,
				VocabSize:    learned.VocabSize(),
				Learned:      learned,
			})
		}

		state.Docs = res.Docs
		state.Queries = res.Queries
		state.Snapshots = res.Snapshots
		if cfg.Stop.Done(state) {
			return res, nil
		}
		if res.Queries >= maxQueries {
			res.Exhausted = true
			return res, nil
		}
		term, ok = cfg.Selector.Next(learned, used, rng)
		if !ok && cfg.InitialModel != nil {
			// The selector has nothing to offer — typically the learned
			// model is still empty because the first queries failed. Keep
			// drawing terms from the initial model until sampling takes
			// hold (the paper's initial term was a random TREC-123 word
			// that need not occur in the sampled database).
			term, ok = randomEligible(cfg.InitialModel, used, rng)
		}
		if !ok {
			res.Exhausted = true
			return res, nil
		}
	}
}
