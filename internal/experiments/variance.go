package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/parallel"
)

// VarianceRow reports run-to-run variability of the baseline experiment on
// one corpus (ext-var). The paper reports single runs; this extension
// quantifies how much the headline numbers move with the sampling seed —
// the error bars the paper's figures do not have.
type VarianceRow struct {
	Corpus string
	Seeds  int
	// Final ctf ratio across seeds.
	CtfMean, CtfStd float64
	// Final Spearman (paper formula) across seeds.
	SpearmanMean, SpearmanStd float64
	// Queries needed across seeds.
	QueriesMean, QueriesStd float64
}

// SeedVariance reruns the baseline on one corpus with nSeeds different
// seeds and reports mean and standard deviation of the final metrics.
func (s *Suite) SeedVariance(name string, nSeeds int) (VarianceRow, error) {
	defer s.timeExp("ext-var")()
	if nSeeds < 2 {
		nSeeds = 2
	}
	env, err := s.Env(name)
	if err != nil {
		return VarianceRow{}, err
	}
	initial, err := s.initialModel(env)
	if err != nil {
		return VarianceRow{}, err
	}
	budget := s.docBudget(name, env)

	// The seed replicas are the textbook embarrassingly parallel workload:
	// same configuration, different seeds, no shared state.
	type finals struct{ ctf, rho, queries float64 }
	runs, err := parallel.Map(s.workers(), make([]struct{}, nSeeds), func(i int, _ struct{}) (finals, error) {
		cfg := core.DefaultConfig(initial, budget, s.Seed+hashName(name)+uint64(5000+i*13))
		cfg.SnapshotEvery = 0
		res, err := core.Sample(env.Index, cfg)
		if err != nil {
			return finals{}, fmt.Errorf("experiments: variance %s seed %d: %w", name, i, err)
		}
		_, ctf, _, rhoSimple, _ := measure(res.Learned, env)
		return finals{ctf: ctf, rho: rhoSimple, queries: float64(res.Queries)}, nil
	})
	if err != nil {
		return VarianceRow{}, err
	}
	ctfs := make([]float64, 0, nSeeds)
	rhos := make([]float64, 0, nSeeds)
	queries := make([]float64, 0, nSeeds)
	for _, r := range runs {
		ctfs = append(ctfs, r.ctf)
		rhos = append(rhos, r.rho)
		queries = append(queries, r.queries)
	}
	row := VarianceRow{Corpus: name, Seeds: nSeeds}
	row.CtfMean, row.CtfStd = meanStd(ctfs)
	row.SpearmanMean, row.SpearmanStd = meanStd(rhos)
	row.QueriesMean, row.QueriesStd = meanStd(queries)
	return row, nil
}

// meanStd returns the sample mean and (population) standard deviation.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// WriteVariance renders the ext-var experiment.
func WriteVariance(w io.Writer, rows []VarianceRow) error {
	fmt.Fprintln(w, "Extension: seed-to-seed variance of the baseline experiment")
	tw := newTW(w)
	fmt.Fprintln(tw, "Corpus\tSeeds\tctf ratio\t±\tSpearman\t±\tQueries\t±")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.4f\t%.4f\t%.4f\t%.4f\t%.1f\t%.1f\n",
			r.Corpus, r.Seeds, r.CtfMean, r.CtfStd, r.SpearmanMean, r.SpearmanStd,
			r.QueriesMean, r.QueriesStd)
	}
	return tw.Flush()
}
