package experiments

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/expansion"
	"repro/internal/langmodel"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/selection"
)

// The ext-expand experiment tests §8's claim: co-occurrence query
// expansion from the *union of samples* improves database selection,
// especially for short queries whose single term may simply be missing
// from a learned model. For each one-term topical query we rank the
// federation with the learned models, once with the bare query and once
// with the query expanded from the pooled samples, and measure where the
// topically correct database lands.

// ExpandResult summarizes the ext-expand experiment.
type ExpandResult struct {
	// Queries is the number of one-term queries evaluated.
	Queries int
	// ExpandK is how many expansion terms were added per query.
	ExpandK int
	// Top1Bare / Top1Expanded are the fractions of queries whose target
	// database ranked first.
	Top1Bare     float64
	Top1Expanded float64
	// MRRBare / MRRExpanded are mean reciprocal ranks of the target.
	MRRBare     float64
	MRRExpanded float64
}

// ExpansionSelection builds a federation, samples every database (the
// samples double as the expansion pool), and compares bare vs expanded
// one-term selection queries.
func ExpansionSelection(numDBs, docsEach, sampleDocs, nQueries, expandK int, seed uint64, opts ...Option) (*ExpandResult, error) {
	o := applyOptions(opts)
	dbs, err := Federation(numDBs, docsEach, seed, opts...)
	if err != nil {
		return nil, err
	}
	an := analysis.Database()
	// Sampling and tokenizing each database is independent and fans out;
	// the shared co-occurrence pool is then fed sequentially in database
	// order, keeping its contents byte-identical to the sequential path.
	type dbSample struct {
		learned *langmodel.Model
		tokens  [][]string
	}
	samples, err := parallel.Map(o.workers, dbs, func(i int, db *FederationDB) (dbSample, error) {
		rec := &recorderDB{db: db.Index}
		cfg := core.DefaultConfig(db.Actual, sampleDocs, seed+uint64(i)+8888)
		cfg.SnapshotEvery = 0
		if _, err := core.Sample(rec, cfg); err != nil {
			return dbSample{}, fmt.Errorf("experiments: expand sampling db %d: %w", i, err)
		}
		out := dbSample{learned: langmodel.New(), tokens: make([][]string, 0, len(rec.texts))}
		for _, text := range rec.texts {
			tokens := an.Tokens(text)
			out.learned.AddDocument(tokens)
			out.tokens = append(out.tokens, tokens)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	pool := expansion.NewPool()
	learned := make([]*langmodel.Model, numDBs)
	for i, s := range samples {
		learned[i] = s.learned
		for _, tokens := range s.tokens {
			pool.AddDocument(tokens)
		}
	}

	rng := randx.New(seed + 55)
	stop := analysis.InqueryStoplist()
	res := &ExpandResult{ExpandK: expandK}
	for qi := 0; qi < nQueries; qi++ {
		target := qi % numDBs
		// Draw from the rare tail of the exclusive topical vocabulary:
		// frequent exclusive terms make one-term selection trivially easy
		// (the learned model almost surely has them), which would leave
		// expansion nothing to do.
		topical := TopicalTerms(dbs[target], dbs, 1200)
		if len(topical) < 8 {
			continue
		}
		tail := topical[len(topical)/2:]
		term := tail[rng.Intn(len(tail))]
		res.Queries++

		rankOf := func(query []string) float64 {
			ranked := selection.Rank(selection.CORI{}, query, learned)
			for pos, r := range ranked {
				if r.DB == target {
					return float64(pos + 1)
				}
			}
			return float64(numDBs)
		}

		bare := rankOf([]string{term})
		expanded := []string{term}
		for _, c := range pool.Expand([]string{term}, expandK, stop) {
			expanded = append(expanded, c.Term)
		}
		exp := rankOf(expanded)

		if bare == 1 {
			res.Top1Bare++
		}
		if exp == 1 {
			res.Top1Expanded++
		}
		res.MRRBare += 1 / bare
		res.MRRExpanded += 1 / exp
	}
	if res.Queries > 0 {
		n := float64(res.Queries)
		res.Top1Bare /= n
		res.Top1Expanded /= n
		res.MRRBare /= n
		res.MRRExpanded /= n
	}
	return res, nil
}

// WriteExpansion renders the ext-expand experiment.
func WriteExpansion(w io.Writer, res *ExpandResult) error {
	fmt.Fprintln(w, "Extension: query expansion from the union of samples (§8), one-term selection queries")
	tw := newTW(w)
	fmt.Fprintf(tw, "Queries\t%d\t(+%d expansion terms)\n", res.Queries, res.ExpandK)
	fmt.Fprintf(tw, "Target ranked first, bare query\t%.3f\t\n", res.Top1Bare)
	fmt.Fprintf(tw, "Target ranked first, expanded\t%.3f\t\n", res.Top1Expanded)
	fmt.Fprintf(tw, "Mean reciprocal rank, bare\t%.3f\t\n", res.MRRBare)
	fmt.Fprintf(tw, "Mean reciprocal rank, expanded\t%.3f\t\n", res.MRRExpanded)
	return tw.Flush()
}
