package experiments

import "repro/internal/parallel"

// Option configures the package-level experiment functions (the federation
// extensions, which are not Suite methods because they build their own
// databases).
type Option func(*options)

type options struct {
	workers int
}

// WithWorkers caps the number of concurrent sampling runs inside a
// package-level experiment. n <= 0 (the default) means one worker per CPU.
// Results are byte-identical at any setting: every database's sampling run
// has its own seed and results are collected in database order.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// applyOptions resolves the option list.
func applyOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	o.workers = parallel.Workers(o.workers)
	return o
}
