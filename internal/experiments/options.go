package experiments

import (
	"time"

	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// Option configures the package-level experiment functions (the federation
// extensions, which are not Suite methods because they build their own
// databases).
type Option func(*options)

type options struct {
	workers int
	metrics *telemetry.Registry
}

// WithWorkers caps the number of concurrent sampling runs inside a
// package-level experiment. n <= 0 (the default) means one worker per CPU.
// Results are byte-identical at any setting: every database's sampling run
// has its own seed and results are collected in database order.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithMetrics routes a package-level experiment's wall time into reg
// under experiments_run_seconds{exp="…"} (nil, the default, records
// nothing). Timing goes through the registry's injectable clock — this
// package is under the repolint wallclock rule and never reads real time
// itself.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(o *options) { o.metrics = reg }
}

// timeExp mirrors Suite.timeExp for the package-level experiments.
func (o options) timeExp(exp string) func() time.Duration {
	return o.metrics.Timer(`experiments_run_seconds{exp="` + exp + `"}`)
}

// applyOptions resolves the option list.
func applyOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	o.workers = parallel.Workers(o.workers)
	return o
}
