// Package experiments reproduces every table and figure of the paper's
// evaluation (§4–§7), plus the extension experiments listed in DESIGN.md.
// Each experiment is a method on Suite returning structured rows; cmd/
// experiments prints them paper-style and bench_test.go wraps them in
// testing.B benchmarks. Everything is deterministic for a given Suite
// configuration.
//
// Every experiment is a set of independent sampling runs, each driven by
// its own seed, so the suite fans out over internal/parallel worker pools:
// Suite.Parallel caps the concurrency, and results are collected in input
// order, making parallel output byte-identical to the sequential path
// (asserted by the golden tests in parallel_test.go). Suite itself is safe
// for concurrent use: the env/baseline/strategy caches build each entry
// exactly once behind a per-key sync.Once.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/langmodel"
	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// Env is a prepared test database: generated corpus, built index, and the
// actual (ground truth) language model.
type Env struct {
	// Profile is the corpus recipe used.
	Profile corpus.Profile
	// Docs is the generated corpus.
	Docs []corpus.Document
	// Index is the database's own index (stopped + stemmed, InQuery
	// ranking), playing the paper's INQUERY role.
	Index *index.Index
	// Actual is the database's actual language model.
	Actual *langmodel.Model
}

// entry is a build-once cache slot: the per-key sync.Once lets distinct
// keys build concurrently while concurrent requests for the same key block
// on a single build.
type entry[T any] struct {
	once sync.Once
	val  T
	err  error
}

// get returns the cached value, building it on first use.
func (e *entry[T]) get(build func() (T, error)) (T, error) {
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}

// Suite prepares and caches the experiment databases.
type Suite struct {
	// Scale multiplies every profile's document count; 1.0 runs the
	// default (DESIGN.md) sizes. Tests use small scales.
	Scale float64
	// Seed offsets all sampling seeds, so suites can be replicated.
	Seed uint64
	// InitialFromTREC, when true, draws every run's first query term from
	// the actual TREC123 model, exactly as the paper does (§4.4). When
	// false (unit tests, quick runs) the first term comes from the sampled
	// database's own model — the paper found the choice immaterial, and
	// this avoids building the largest corpus for small experiments.
	InitialFromTREC bool
	// Parallel caps the number of concurrent sampling runs (and of
	// concurrent per-snapshot metric evaluations inside each run). 0 means
	// one worker per CPU (GOMAXPROCS); 1 runs strictly sequentially.
	// Results are byte-identical either way — every run has its own seed.
	Parallel int
	// Metrics, when non-nil, receives per-experiment wall time
	// (experiments_run_seconds{exp="…"}) and per-corpus env build time
	// (experiments_env_build_seconds{env="…"}). This package is under the
	// repolint wallclock rule, so all timing goes through the registry's
	// injectable clock — experiment *results* never depend on it.
	Metrics *telemetry.Registry

	mu         sync.Mutex
	envs       map[string]*entry[*Env]
	baselines  map[string]*entry[*BaselineRun]
	strategies map[string]*entry[[]StrategyRun]
}

// NewSuite returns a Suite at the given scale.
func NewSuite(scale float64, seed uint64) *Suite {
	return &Suite{Scale: scale, Seed: seed, InitialFromTREC: true}
}

// WithSharedEnvs returns a new Suite that shares s's prepared corpora and
// indexes but none of its cached experiment runs. Benchmarks use it to
// time experiment runs without re-generating corpora on every iteration.
func (s *Suite) WithSharedEnvs(seed uint64) *Suite {
	s.mu.Lock()
	defer s.mu.Unlock()
	envs := make(map[string]*entry[*Env], len(s.envs))
	for k, v := range s.envs {
		envs[k] = v
	}
	return &Suite{
		Scale:           s.Scale,
		Seed:            seed,
		InitialFromTREC: s.InitialFromTREC,
		Parallel:        s.Parallel,
		envs:            envs,
	}
}

// workers resolves the suite's concurrency cap.
func (s *Suite) workers() int { return parallel.Workers(s.Parallel) }

// timeExp returns a stop function observing one experiment's wall time
// under experiments_run_seconds{exp="…"} — the per-experiment cost view
// cmd/experiments prints with -timing. A nil Metrics registry makes it
// free. exp values come from the fixed experiment id set (table1, fig1,
// …, ext-fed), so cardinality is bounded.
func (s *Suite) timeExp(exp string) func() time.Duration {
	return s.Metrics.Timer(`experiments_run_seconds{exp="` + exp + `"}`)
}

// profileByName maps experiment corpus names to profiles.
func profileByName(name string) (corpus.Profile, error) {
	switch name {
	case "CACM":
		return corpus.CACM(), nil
	case "WSJ88":
		return corpus.WSJ88(), nil
	case "TREC123":
		return corpus.TREC123(), nil
	case "Support":
		return corpus.Support(), nil
	}
	return corpus.Profile{}, fmt.Errorf("experiments: unknown corpus %q", name)
}

// envEntry returns (creating if needed) the cache slot for a corpus. Only
// the map access is under the suite lock; the build itself runs outside
// it, so different corpora can build concurrently.
func (s *Suite) envEntry(name string) *entry[*Env] {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.envs == nil {
		s.envs = make(map[string]*entry[*Env])
	}
	e, ok := s.envs[name]
	if !ok {
		e = &entry[*Env]{}
		s.envs[name] = e
	}
	return e
}

// Env returns the prepared environment for one of the paper corpora
// ("CACM", "WSJ88", "TREC123", "Support"), building and caching it on
// first use. Safe for concurrent use.
func (s *Suite) Env(name string) (*Env, error) {
	return s.envEntry(name).get(func() (*Env, error) {
		defer s.Metrics.Timer(`experiments_env_build_seconds{env="` + name + `"}`)()
		p, err := profileByName(name)
		if err != nil {
			return nil, err
		}
		if s.Scale > 0 && s.Scale != 1 {
			p = corpus.Scaled(p, s.Scale)
		}
		docs, err := p.Generate()
		if err != nil {
			return nil, err
		}
		ix := index.Build(docs, analysis.Database(), index.InQuery)
		return &Env{Profile: p, Docs: docs, Index: ix, Actual: ix.LanguageModel()}, nil
	})
}

// Prepare builds the named corpora concurrently (bounded by Parallel) so a
// following fan-out starts from warm caches. Duplicate names are fine.
func (s *Suite) Prepare(names ...string) error {
	return parallel.ForN(s.workers(), len(names), func(i int) error {
		_, err := s.Env(names[i])
		return err
	})
}

// initialModel returns the model the first query term is drawn from for a
// run against env (see InitialFromTREC).
func (s *Suite) initialModel(env *Env) (*langmodel.Model, error) {
	if !s.InitialFromTREC {
		return env.Actual, nil
	}
	trec, err := s.Env("TREC123")
	if err != nil {
		return nil, err
	}
	return trec.Actual, nil
}

// docBudget returns the paper's sampling budget for a corpus (300 docs for
// CACM and WSJ88, 500 for TREC123, §4.4), clamped to the scaled corpus
// size so tiny test suites still terminate.
func (s *Suite) docBudget(name string, env *Env) int {
	budget := 300
	if name == "TREC123" {
		budget = 500
	}
	if n := env.Profile.Docs; budget > n {
		budget = n
	}
	return budget
}
