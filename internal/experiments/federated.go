package experiments

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/langmodel"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/selection"
)

// The ext-fed experiment answers the end-to-end question behind the whole
// paper: if a federated system selects databases with *sampled* language
// models, searches only the selected few, and merges their results, how
// close does retrieval quality come to (a) the same pipeline with perfect
// (actual) models, and (b) an impossible centralized index of everything?
// The relevance oracle is synthetic but unambiguous: a document is
// relevant to a query iff it belongs to the query's source topic and
// contains at least one query term.

// FedResult summarizes the ext-fed experiment.
type FedResult struct {
	// Queries is the number of evaluated queries.
	Queries int
	// SelectDBs is how many databases the federated runs searched.
	SelectDBs int
	// PrecisionCentral is mean P@10 of the single centralized index.
	PrecisionCentral float64
	// PrecisionActual is mean P@10 of select-and-merge with actual models.
	PrecisionActual float64
	// PrecisionSampled is the same with sampled (learned) models.
	PrecisionSampled float64
	// PrecisionRandom is the same selecting databases at random — the
	// floor selection must beat.
	PrecisionRandom float64
}

// FederatedRetrieval builds a federation plus a centralized index over
// the same documents and measures end-to-end P@10 for the four systems.
func FederatedRetrieval(numDBs, docsEach, sampleDocs, nQueries, selectK int, seed uint64, opts ...Option) (*FedResult, error) {
	o := applyOptions(opts)
	defer o.timeExp("ext-fed")()
	dbs, err := Federation(numDBs, docsEach, seed, opts...)
	if err != nil {
		return nil, err
	}
	if selectK <= 0 || selectK > numDBs {
		selectK = 3
	}

	// Centralized baseline: one index over every document. Global doc ids
	// are db*docsEach + localID.
	var all []corpus.Document
	for dbi, db := range dbs {
		for local := 0; local < db.Index.NumDocs(); local++ {
			d, err := db.Index.Fetch(local)
			if err != nil {
				return nil, err
			}
			d.ID = dbi*docsEach + local
			all = append(all, d)
		}
	}
	central := index.Build(all, analysis.Database(), index.InQuery)

	// Models: actual, and learned by sampling each database independently
	// under the worker pool (per-db seeds, database-ordered collection).
	actuals := make([]*langmodel.Model, numDBs)
	for i, db := range dbs {
		actuals[i] = db.Actual
	}
	sampled, err := parallel.Map(o.workers, dbs, func(i int, db *FederationDB) (*langmodel.Model, error) {
		cfg := core.DefaultConfig(db.Actual, sampleDocs, seed+uint64(i)+4242)
		cfg.SnapshotEvery = 0
		res, err := core.Sample(db.Index, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: fed sampling db %d: %w", i, err)
		}
		return res.Learned.Normalize(db.Index.Analyzer()), nil
	})
	if err != nil {
		return nil, err
	}

	queries := federationQueries(dbs, nQueries, seed+777)
	rng := randx.New(seed + 31337)
	res := &FedResult{Queries: len(queries), SelectDBs: selectK}

	for qi, q := range queries {
		topic := qi % numDBs // federationQueries cycles through databases
		queryText := q[0] + " " + q[1]
		relevant := func(dbi, local int) bool {
			if dbi != topic {
				return false
			}
			d, err := dbs[dbi].Index.Fetch(local)
			if err != nil {
				return false
			}
			toks := dbs[dbi].Index.Analyzer().Tokens(d.Text)
			for _, t := range toks {
				if t == q[0] || t == q[1] {
					return true
				}
			}
			return false
		}

		// Centralized.
		ids, err := central.Search(queryText, 10)
		if err != nil {
			return nil, err
		}
		hitsRel := 0
		for _, gid := range ids {
			if relevant(gid/docsEach, gid%docsEach) {
				hitsRel++
			}
		}
		res.PrecisionCentral += float64(hitsRel) / 10

		// Federated with a given model set.
		federated := func(models []*langmodel.Model, randomPick bool) (float64, error) {
			var chosen []int
			if randomPick {
				perm := rng.Perm(numDBs)
				chosen = perm[:selectK]
			} else {
				ranked := selection.Rank(selection.CORI{}, q, models)
				for _, r := range ranked[:selectK] {
					chosen = append(chosen, r.DB)
				}
			}
			var perDB [][]selection.DocScore
			var dbScores []float64
			scores := selection.CORI{}.Scores(q, models)
			for _, dbi := range chosen {
				hits, err := dbs[dbi].Index.SearchScored(queryText, 10)
				if err != nil {
					return 0, err
				}
				list := make([]selection.DocScore, len(hits))
				for i, h := range hits {
					list[i] = selection.DocScore{Doc: dbi*docsEach + h.Doc, Score: h.Score}
				}
				perDB = append(perDB, list)
				dbScores = append(dbScores, scores[dbi])
			}
			merged, err := selection.MergeWeighted(perDB, dbScores, 10)
		if err != nil {
			return 0, err
		}
			rel := 0
			for _, h := range merged {
				if relevant(h.Doc/docsEach, h.Doc%docsEach) {
					rel++
				}
			}
			return float64(rel) / 10, nil
		}

		pa, err := federated(actuals, false)
		if err != nil {
			return nil, err
		}
		ps, err := federated(sampled, false)
		if err != nil {
			return nil, err
		}
		pr, err := federated(actuals, true)
		if err != nil {
			return nil, err
		}
		res.PrecisionActual += pa
		res.PrecisionSampled += ps
		res.PrecisionRandom += pr
	}
	n := float64(len(queries))
	res.PrecisionCentral /= n
	res.PrecisionActual /= n
	res.PrecisionSampled /= n
	res.PrecisionRandom /= n
	return res, nil
}

// WriteFederated renders the ext-fed experiment.
func WriteFederated(w io.Writer, res *FedResult) error {
	fmt.Fprintln(w, "Extension: end-to-end federated retrieval (mean P@10)")
	tw := newTW(w)
	fmt.Fprintf(tw, "Queries\t%d\t(select top %d databases)\n", res.Queries, res.SelectDBs)
	fmt.Fprintf(tw, "Centralized single index\t%.3f\t(upper bound)\n", res.PrecisionCentral)
	fmt.Fprintf(tw, "Select+merge, actual models\t%.3f\t\n", res.PrecisionActual)
	fmt.Fprintf(tw, "Select+merge, sampled models\t%.3f\t(the paper's proposal)\n", res.PrecisionSampled)
	fmt.Fprintf(tw, "Select+merge, random selection\t%.3f\t(floor)\n", res.PrecisionRandom)
	return tw.Flush()
}
