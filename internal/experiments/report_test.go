package experiments

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/summarize"
)

func sampleBaselines() []*BaselineRun {
	return []*BaselineRun{
		{
			Corpus: "CACM",
			Points: []CurvePoint{
				{Docs: 50, PctLearned: 0.1, CtfRatio: 0.7, Spearman: 0.5, SpearmanSimple: 0.6},
				{Docs: 100, PctLearned: 0.2, CtfRatio: 0.8, Spearman: 0.6, SpearmanSimple: 0.8},
			},
			Rdiff:   []RdiffPoint{{Docs: 100, Rdiff: 0.01}},
			Queries: 30, Docs: 100,
		},
		{
			Corpus: "TREC123",
			Points: []CurvePoint{
				{Docs: 50, PctLearned: 0.01, CtfRatio: 0.5, Spearman: 0.3, SpearmanSimple: 0.4},
				{Docs: 100, PctLearned: 0.02, CtfRatio: 0.6, Spearman: 0.4, SpearmanSimple: 0.5},
				{Docs: 150, PctLearned: 0.03, CtfRatio: 0.7, Spearman: 0.5, SpearmanSimple: 0.6},
			},
			Rdiff:   []RdiffPoint{{Docs: 100, Rdiff: 0.02}, {Docs: 150, Rdiff: 0.015}},
			Queries: 40, Docs: 150,
		},
	}
}

func TestWriteTable1(t *testing.T) {
	var sb strings.Builder
	rows := []corpus.Stats{
		{Name: "CACM", Bytes: 100, Docs: 10, UniqueTerms: 5, TotalTerms: 50, Topics: 1},
	}
	if err := WriteTable1(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 1", "CACM", "unique terms"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteFigures1And2(t *testing.T) {
	runs := sampleBaselines()
	for name, fn := range map[string]func(*strings.Builder) error{
		"fig1a": func(sb *strings.Builder) error { return WriteFigure1a(sb, runs) },
		"fig1b": func(sb *strings.Builder) error { return WriteFigure1b(sb, runs) },
		"fig2":  func(sb *strings.Builder) error { return WriteFigure2(sb, runs) },
	} {
		var sb strings.Builder
		if err := fn(&sb); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := sb.String()
		if !strings.Contains(out, "CACM") || !strings.Contains(out, "TREC123") {
			t.Errorf("%s missing corpora:\n%s", name, out)
		}
		// Short run pads missing rows with a dash.
		if !strings.Contains(out, "-") {
			t.Errorf("%s missing padding for ragged curves:\n%s", name, out)
		}
	}
}

func TestWriteTable2(t *testing.T) {
	var sb strings.Builder
	rows := []Table2Row{
		{Corpus: "CACM", N: 4, Docs: 120, SRCC: 0.9, Queries: 40},
		{Corpus: "CACM", N: 10, Docs: 0, SRCC: 0, Queries: 99}, // never crossed
	}
	if err := WriteTable2(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "120") || !strings.Contains(out, "0.90") {
		t.Errorf("missing crossing row:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("missing dash for uncrossed row:\n%s", out)
	}
}

func TestWriteFigure3AndTable3(t *testing.T) {
	runs := []StrategyRun{
		{
			Strategy: "random-llm",
			Points: []CurvePoint{
				{Docs: 50, CtfRatio: 0.7, SpearmanSimple: 0.8},
			},
			Queries: 20, FailedQueries: 1, Docs: 50,
		},
		{
			Strategy: "random-olm",
			Points: []CurvePoint{
				{Docs: 50, CtfRatio: 0.75, SpearmanSimple: 0.85},
				{Docs: 100, CtfRatio: 0.8, SpearmanSimple: 0.9},
			},
			Queries: 45, FailedQueries: 20, Docs: 100,
		},
	}
	var sb strings.Builder
	if err := WriteFigure3a(&sb, runs); err != nil {
		t.Fatal(err)
	}
	if err := WriteFigure3b(&sb, runs); err != nil {
		t.Fatal(err)
	}
	if err := WriteTable3(&sb, runs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"random-llm", "random-olm", "Failed queries", "45", "20"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteFigure4(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigure4(&sb, sampleBaselines()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "0.01000") || !strings.Contains(out, "0.01500") {
		t.Errorf("missing rdiff values:\n%s", out)
	}
}

func TestWriteTable4(t *testing.T) {
	var sb strings.Builder
	res := &Table4Result{
		Rows: []summarize.Row{
			{Term: "microsoft", DF: 10, CTF: 100, AvgTF: 10},
		},
		SeededFound: 1, DocsSampled: 300, Queries: 12,
	}
	if err := WriteTable4(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "microsoft") || !strings.Contains(out, "300 docs sampled") {
		t.Errorf("table 4 output wrong:\n%s", out)
	}
}

func TestWriteExtensions(t *testing.T) {
	var sb strings.Builder
	if err := WriteAgreement(&sb, []AgreementResult{
		{Algorithm: "cori", Points: []AgreementPoint{{SampleDocs: 50, Spearman: 0.5, Top3Overlap: 0.8}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteAdversarial(&sb, &AdversarialResult{
		Query: []string{"bait"}, LiarRankCooperative: 1, LiarRankSampled: 5, CoverageFailures: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteStopping(&sb, []StoppingRow{
		{Corpus: "CACM", Docs: 150, CtfRatio: 0.8, Spearman: 0.9, FixedDocs: 300, FixedCtfRatio: 0.85, FixedSpearman: 0.95},
	}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"cori", "bait", "non-cooperation", "stopping rule", "150"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteVarianceAndSizes(t *testing.T) {
	var sb strings.Builder
	if err := WriteVariance(&sb, []VarianceRow{
		{Corpus: "CACM", Seeds: 5, CtfMean: 0.9, CtfStd: 0.01,
			SpearmanMean: 0.95, SpearmanStd: 0.005, QueriesMean: 100, QueriesStd: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSizes(&sb, []SizeRow{
		{Corpus: "CACM", Actual: 3204, CaptureRecapture: 3100, CaptureRecaptureErr: 0.03,
			SampleResample: 2800, SampleResampleErr: 0.13, SampleDocs: 300},
	}); err != nil {
		t.Fatal(err)
	}
	if err := WritePhrase(&sb, "WSJ88", []PhrasePoint{
		{Docs: 50, UnigramCtf: 0.7, BigramCtf: 0.3, BigramVocab: 5000},
	}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"variance", "size estimation", "bigram", "3204", "0.9000"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
