package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/langmodel"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/summarize"
)

// CurvePoint is one snapshot on a learning curve (Figures 1–3).
type CurvePoint struct {
	// Docs is the number of documents examined at this point.
	Docs int
	// Queries is the number of queries issued by then.
	Queries int
	// PctLearned is the share of the actual vocabulary learned (Fig 1a).
	PctLearned float64
	// CtfRatio is the share of term occurrences covered (Fig 1b, 3a).
	CtfRatio float64
	// Spearman is the tie-corrected rank correlation (Fig 2, 3b).
	Spearman float64
	// SpearmanSimple is the paper's untied formula, for reference.
	SpearmanSimple float64
	// KendallTau is the tau-b cross-check (extension).
	KendallTau float64
}

// RdiffPoint is one step of the Figure 4 convergence curve.
type RdiffPoint struct {
	// Docs is the snapshot position; Rdiff compares the models at
	// Docs-interval and Docs.
	Docs  int
	Rdiff float64
}

// BaselineRun is one paper-baseline sampling run (random-llm selection,
// 4 docs/query) with its full metric trace. Figures 1, 2 and 4 are all
// views of the three corpora's baseline runs.
type BaselineRun struct {
	// Corpus names the sampled database.
	Corpus string
	// Points holds metrics at every 50-document snapshot.
	Points []CurvePoint
	// Rdiff holds the between-snapshot rank movement (Figure 4).
	Rdiff []RdiffPoint
	// Queries is the total number of queries issued.
	Queries int
	// FailedQueries is the number that returned nothing.
	FailedQueries int
	// Docs is the total number of documents examined.
	Docs int
}

// measure computes every comparison metric between a raw learned model and
// the environment's actual model, applying the §4.1 protocol: normalize
// the learned vocabulary to the database's conventions first.
func measure(learned *langmodel.Model, env *Env) (pct, ctf, rho, rhoSimple, tau float64) {
	norm := learned.Normalize(env.Index.Analyzer())
	pct = metrics.PercentageLearned(norm, env.Actual)
	ctf = metrics.CtfRatio(norm, env.Actual)
	rho = metrics.Spearman(norm, env.Actual, langmodel.ByDF)
	rhoSimple = metrics.SpearmanSimple(norm, env.Actual, langmodel.ByDF)
	tau = metrics.KendallTau(norm, env.Actual, langmodel.ByDF)
	return
}

// curvesFromRun converts a sampling result's snapshots into curve points
// and rdiff steps. Each snapshot's metric evaluation is independent (the
// snapshots are immutable views), so the measurements fan out over a
// worker pool; rdiff needs the previous snapshot too, so it runs as a
// second ordered pass over consecutive pairs. Results are collected in
// snapshot order, so the output is identical to the sequential loop.
func curvesFromRun(res *core.Result, env *Env, workers int) ([]CurvePoint, []RdiffPoint) {
	points, _ := parallel.Map(workers, res.Snapshots, func(_ int, snap core.Snapshot) (CurvePoint, error) {
		pct, ctf, rho, rhoS, tau := measure(snap.Model, env)
		return CurvePoint{
			Docs: snap.Docs, Queries: snap.Queries,
			PctLearned: pct, CtfRatio: ctf,
			Spearman: rho, SpearmanSimple: rhoS, KendallTau: tau,
		}, nil
	})
	rdiffs := make([]RdiffPoint, 0, len(res.Snapshots))
	if len(res.Snapshots) > 1 {
		rdiffs, _ = parallel.Map(workers, res.Snapshots[1:], func(i int, snap core.Snapshot) (RdiffPoint, error) {
			// res.Snapshots[i] is the snapshot preceding snap.
			return RdiffPoint{
				Docs:  snap.Docs,
				Rdiff: metrics.Rdiff(res.Snapshots[i].Model, snap.Model, langmodel.ByDF),
			}, nil
		})
	}
	return points, rdiffs
}

// Baseline runs (and caches) the paper's baseline experiment on one corpus:
// random-llm selection, 4 documents per query, 300 documents (500 for
// TREC123), snapshots every 50 documents.
func (s *Suite) Baseline(name string) (*BaselineRun, error) {
	s.mu.Lock()
	if s.baselines == nil {
		s.baselines = make(map[string]*entry[*BaselineRun])
	}
	e, ok := s.baselines[name]
	if !ok {
		e = &entry[*BaselineRun]{}
		s.baselines[name] = e
	}
	s.mu.Unlock()
	return e.get(func() (*BaselineRun, error) {
		defer s.timeExp("baseline")()
		env, err := s.Env(name)
		if err != nil {
			return nil, err
		}
		initial, err := s.initialModel(env)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(initial, s.docBudget(name, env), s.Seed+hashName(name))
		res, err := core.Sample(env.Index, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: baseline %s: %w", name, err)
		}
		points, rdiffs := curvesFromRun(res, env, s.workers())
		return &BaselineRun{
			Corpus: name, Points: points, Rdiff: rdiffs,
			Queries: res.Queries, FailedQueries: res.FailedQueries, Docs: res.Docs,
		}, nil
	})
}

// Baselines runs the baseline experiment on every Table 1 corpus, fanning
// the independent sampling runs out over the suite's worker pool. The
// returned slice is in Corpora() order and byte-identical to calling
// Baseline sequentially (each run is seeded independently).
func (s *Suite) Baselines() ([]*BaselineRun, error) {
	names := Corpora()
	// Build the corpora (and the TREC123 initial model) concurrently
	// first, so the sampling fan-out below starts from warm env caches.
	prep := append([]string(nil), names...)
	if s.InitialFromTREC {
		prep = append(prep, "TREC123")
	}
	if err := s.Prepare(prep...); err != nil {
		return nil, err
	}
	return parallel.Map(s.workers(), names, func(_ int, name string) (*BaselineRun, error) {
		return s.Baseline(name)
	})
}

// Corpora lists the three Table 1 corpora in paper order.
func Corpora() []string { return []string{"CACM", "WSJ88", "TREC123"} }

// Table1 generates the test-corpus summary (Table 1). Corpus builds and
// the stats passes are independent per corpus, so they fan out.
func (s *Suite) Table1() ([]corpus.Stats, error) {
	defer s.timeExp("table1")()
	return parallel.Map(s.workers(), Corpora(), func(_ int, name string) (corpus.Stats, error) {
		env, err := s.Env(name)
		if err != nil {
			return corpus.Stats{}, err
		}
		return corpus.ComputeStats(env.Profile.Name, env.Docs, analysis.Raw()), nil
	})
}

// Table2Row reports, for one (corpus, docs-per-query) pair, how many
// documents were needed to reach a ctf ratio of 80% and the Spearman
// coefficient at that point (Table 2).
type Table2Row struct {
	Corpus string
	// N is documents examined per query.
	N int
	// Docs is the number of documents at which ctf ratio crossed 0.80
	// (0 if never crossed within the budget).
	Docs int
	// SRCC is the Spearman coefficient (paper formula, dense shared
	// ranks) at that point.
	SRCC float64
	// Queries is how many queries that took.
	Queries int
}

// ctfThresholdStop stops a run as soon as the normalized learned model
// covers the threshold share of the actual model's term occurrences. It is
// an oracle condition (it peeks at the actual model), used only to measure
// *when* the crossing happens, as Table 2 does.
type ctfThresholdStop struct {
	env       *Env
	threshold float64
	lastDocs  int
	done      bool
}

func (c *ctfThresholdStop) Name() string { return fmt.Sprintf("ctf-ratio>=%.2f", c.threshold) }

func (c *ctfThresholdStop) Done(st *core.State) bool {
	if c.done {
		return true
	}
	// Recheck only when new documents arrived; normalization is not free.
	if st.Docs == c.lastDocs {
		return false
	}
	c.lastDocs = st.Docs
	norm := st.Learned.Normalize(c.env.Index.Analyzer())
	if metrics.CtfRatio(norm, c.env.Actual) >= c.threshold {
		c.done = true
	}
	return c.done
}

// Table2 measures the cost of reaching an 80% ctf ratio for each
// documents-per-query setting (Table 2; the paper tests N = 1,2,4,6,8,10).
func (s *Suite) Table2(name string, ns []int) ([]Table2Row, error) {
	defer s.timeExp("table2")()
	env, err := s.Env(name)
	if err != nil {
		return nil, err
	}
	initial, err := s.initialModel(env)
	if err != nil {
		return nil, err
	}
	// Each documents-per-query setting is an independent run with its own
	// seed, so the sweep fans out over the worker pool.
	return parallel.Map(s.workers(), ns, func(_ int, n int) (Table2Row, error) {
		stop := &ctfThresholdStop{env: env, threshold: 0.80}
		cfg := core.Config{
			DocsPerQuery:  n,
			Selector:      core.RandomLLM{},
			Stop:          core.StopAny(stop, core.StopAfterDocs(env.Profile.Docs)),
			InitialModel:  initial,
			Analyzer:      analysis.Raw(),
			SnapshotEvery: 0,
			Seed:          s.Seed + hashName(name) + uint64(n),
		}
		res, err := core.Sample(env.Index, cfg)
		if err != nil {
			return Table2Row{}, fmt.Errorf("experiments: table2 %s N=%d: %w", name, n, err)
		}
		row := Table2Row{Corpus: name, N: n, Queries: res.Queries}
		if stop.done {
			row.Docs = res.Docs
			_, _, _, rhoSimple, _ := measure(res.Learned, env)
			row.SRCC = rhoSimple
		}
		return row, nil
	})
}

// StrategyRun is one query-selection-strategy run (Figure 3, Table 3).
type StrategyRun struct {
	// Strategy is the selector name (random-olm, random-llm, df-llm, ...).
	Strategy string
	// Points holds the metric curve at 50-document snapshots.
	Points []CurvePoint
	// Queries is the total query count to reach the document budget —
	// the Table 3 value.
	Queries int
	// FailedQueries is the subset returning no documents.
	FailedQueries int
	// Docs is the documents actually examined.
	Docs int
}

// StrategyNames lists the §5.2 strategies in the paper's column order.
func StrategyNames() []string {
	return []string{"random-olm", "random-llm", "avg-tf-llm", "df-llm", "ctf-llm"}
}

// Strategies runs the query-selection-strategy comparison on one corpus
// (the paper reports WSJ88, §5.2). The random-olm strategy draws terms
// from the actual TREC123 model, exactly as the paper does.
func (s *Suite) Strategies(name string) ([]StrategyRun, error) {
	s.mu.Lock()
	if s.strategies == nil {
		s.strategies = make(map[string]*entry[[]StrategyRun])
	}
	e, ok := s.strategies[name]
	if !ok {
		e = &entry[[]StrategyRun]{}
		s.strategies[name] = e
	}
	s.mu.Unlock()
	return e.get(func() ([]StrategyRun, error) {
		defer s.timeExp("strategies")()
		env, err := s.Env(name)
		if err != nil {
			return nil, err
		}
		initial, err := s.initialModel(env)
		if err != nil {
			return nil, err
		}
		trec, err := s.Env("TREC123")
		if err != nil {
			return nil, err
		}
		selectors := []core.TermSelector{
			core.RandomOLM{Other: trec.Actual},
			core.RandomLLM{},
			core.FrequencyLLM{Metric: langmodel.ByAvgTF},
			core.FrequencyLLM{Metric: langmodel.ByDF},
			core.FrequencyLLM{Metric: langmodel.ByCTF},
		}
		budget := s.docBudget(name, env)
		// The five strategy runs are independent (per-selector seeds), so
		// they fan out; results collect in the paper's column order.
		return parallel.Map(s.workers(), selectors, func(i int, sel core.TermSelector) (StrategyRun, error) {
			cfg := core.Config{
				DocsPerQuery:  4,
				Selector:      sel,
				Stop:          core.StopAfterDocs(budget),
				InitialModel:  initial,
				Analyzer:      analysis.Raw(),
				SnapshotEvery: 50,
				Seed:          s.Seed + hashName(name) + uint64(1000+i),
			}
			res, err := core.Sample(env.Index, cfg)
			if err != nil {
				return StrategyRun{}, fmt.Errorf("experiments: strategy %s on %s: %w", sel.Name(), name, err)
			}
			points, _ := curvesFromRun(res, env, s.workers())
			return StrategyRun{
				Strategy: sel.Name(), Points: points,
				Queries: res.Queries, FailedQueries: res.FailedQueries, Docs: res.Docs,
			}, nil
		})
	})
}

// StrategyMatrix runs the full strategy comparison on several corpora at
// once — the Figure 3 matrix — fanning out both across corpora and across
// the five selectors within each corpus. The result is indexed like the
// names argument and byte-identical to sequential Strategies calls.
func (s *Suite) StrategyMatrix(names []string) ([][]StrategyRun, error) {
	prep := append([]string(nil), names...)
	prep = append(prep, "TREC123") // random-olm always draws from TREC123
	if err := s.Prepare(prep...); err != nil {
		return nil, err
	}
	return parallel.Map(s.workers(), names, func(_ int, name string) ([]StrategyRun, error) {
		return s.Strategies(name)
	})
}

// Table4Result is the §7 summary of the sampled Support database.
type Table4Result struct {
	// Rows is the top-k terms of the learned model ranked by avg-tf.
	Rows []summarize.Row
	// SeededFound is how many of the corpus's 50 seeded product terms
	// (the paper's Table 4 words) appear among the top-k rows.
	SeededFound int
	// DocsSampled and Queries describe the sampling cost.
	DocsSampled int
	Queries     int
}

// Table4 samples the Support database at 25 documents per query (as the
// paper's earliest experiment did, §7) and summarizes it by avg-tf.
func (s *Suite) Table4(topK int) (*Table4Result, error) {
	defer s.timeExp("table4")()
	env, err := s.Env("Support")
	if err != nil {
		return nil, err
	}
	// The Support corpus vocabulary is disjoint from TREC123's topical
	// vocabulary except for function words; the paper sampled this
	// database directly, so the initial term comes from its own model
	// regardless of InitialFromTREC.
	initial := env.Actual
	budget := 300
	if budget > env.Profile.Docs {
		budget = env.Profile.Docs
	}
	cfg := core.Config{
		DocsPerQuery: 25, // §7: "25 documents were examined per query"
		Selector:     core.RandomLLM{},
		Stop:         core.StopAfterDocs(budget),
		InitialModel: initial,
		Analyzer:     analysis.Raw(),
		Seed:         s.Seed + hashName("Support"),
	}
	res, err := core.Sample(env.Index, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: table4: %w", err)
	}
	rows := summarize.Top(res.Learned, langmodel.ByAvgTF, topK, analysis.InqueryStoplist())
	seeded := make(map[string]bool, 50)
	for _, t := range corpus.Table4Terms() {
		seeded[t] = true
	}
	found := 0
	for _, r := range rows {
		if seeded[r.Term] {
			found++
		}
	}
	return &Table4Result{
		Rows: rows, SeededFound: found,
		DocsSampled: res.Docs, Queries: res.Queries,
	}, nil
}

// hashName gives each corpus a stable seed offset.
func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
