package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/langmodel"
)

func TestFederationBuilds(t *testing.T) {
	dbs, err := Federation(4, 120, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 4 {
		t.Fatalf("got %d dbs", len(dbs))
	}
	names := map[string]bool{}
	for _, db := range dbs {
		if db.Index.NumDocs() != 120 {
			t.Errorf("%s has %d docs", db.Name, db.Index.NumDocs())
		}
		if names[db.Name] {
			t.Errorf("duplicate db name %s", db.Name)
		}
		names[db.Name] = true
	}
}

func TestSelectionAgreementImprovesWithBudget(t *testing.T) {
	results, err := SelectionAgreement(5, 200, []int{25, 100}, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d algorithms", len(results))
	}
	for _, r := range results {
		if len(r.Points) != 2 {
			t.Fatalf("%s: %d points", r.Algorithm, len(r.Points))
		}
		small, large := r.Points[0], r.Points[1]
		if small.SampleDocs >= large.SampleDocs {
			t.Errorf("%s: budgets not ordered", r.Algorithm)
		}
		for _, p := range r.Points {
			if p.Spearman < -1 || p.Spearman > 1 {
				t.Errorf("%s: agreement %f out of range", r.Algorithm, p.Spearman)
			}
			if p.Top3Overlap < 0 || p.Top3Overlap > 1 {
				t.Errorf("%s: overlap %f out of range", r.Algorithm, p.Top3Overlap)
			}
		}
		// With a topically separable federation, selection built on real
		// samples must do clearly better than chance at the larger budget.
		if large.Top3Overlap < 0.5 {
			t.Errorf("%s: top-3 overlap at 100 docs = %f, want >= 0.5",
				r.Algorithm, large.Top3Overlap)
		}
	}
}

func TestAdversarialLiarWinsOnlyCooperatively(t *testing.T) {
	res, err := Adversarial(5, 200, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.LiarRankCooperative == 0 || res.LiarRankSampled == 0 {
		t.Fatalf("liar missing from a ranking: %+v", res)
	}
	// The lie works on the cooperative path (liar at/near the top)...
	if res.LiarRankCooperative > 2 {
		t.Errorf("cooperative liar rank = %d, expected top-2", res.LiarRankCooperative)
	}
	// ...and is strictly less effective under sampling.
	if res.LiarRankSampled <= res.LiarRankCooperative {
		t.Errorf("sampling did not demote the liar: coop %d vs sampled %d",
			res.LiarRankCooperative, res.LiarRankSampled)
	}
	// The refuser is invisible to the cooperative service.
	if res.CoverageFailures != 1 {
		t.Errorf("coverage failures = %d, want 1", res.CoverageFailures)
	}
}

func TestAdversarialValidation(t *testing.T) {
	if _, err := Adversarial(3, 50, 20, 1); err == nil {
		t.Error("accepted too-small federation")
	}
}

func TestStoppingRuleStopsEarlierThanCorpus(t *testing.T) {
	s := smallSuite()
	rows, err := s.StoppingRule(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Docs == 0 {
			t.Errorf("%s: stopping rule sampled nothing", r.Corpus)
		}
		if r.CtfRatio <= 0 || r.CtfRatio > 1 {
			t.Errorf("%s: ctf ratio %f", r.Corpus, r.CtfRatio)
		}
		if r.FixedDocs == 0 {
			t.Errorf("%s: baseline missing", r.Corpus)
		}
	}
}

func TestSizeEstimation(t *testing.T) {
	s := smallSuite()
	rows, err := s.SizeEstimation(150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Actual == 0 || r.CaptureRecapture <= 0 || r.SampleResample <= 0 {
			t.Errorf("%s: degenerate estimates %+v", r.Corpus, r)
		}
		// Capture-recapture should be within a small factor of truth at
		// these sample fractions.
		if r.CaptureRecaptureErr > 1.0 {
			t.Errorf("%s: capture-recapture rel err %.2f too large", r.Corpus, r.CaptureRecaptureErr)
		}
	}
}

func TestPhraseConvergence(t *testing.T) {
	s := smallSuite()
	points, err := s.PhraseConvergence("CACM")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 {
		t.Fatalf("only %d points", len(points))
	}
	last := points[len(points)-1]
	first := points[0]
	if last.UnigramCtf <= first.UnigramCtf {
		t.Error("unigram coverage did not grow")
	}
	if last.BigramCtf <= first.BigramCtf {
		t.Error("bigram coverage did not grow")
	}
	// The experiment's point: phrase statistics converge more slowly. At
	// tiny test scale the budget may cover the whole corpus (both reach
	// 1.0), so assert on the first, clearly partial, snapshot.
	if first.BigramCtf >= first.UnigramCtf {
		t.Errorf("bigram ctf %f not below unigram %f at %d docs",
			first.BigramCtf, first.UnigramCtf, first.Docs)
	}
	for _, p := range points {
		if p.BigramCtf < 0 || p.BigramCtf > 1 || p.UnigramCtf < 0 || p.UnigramCtf > 1 {
			t.Errorf("ctf ratio out of range: %+v", p)
		}
	}
}

func TestGcdAll(t *testing.T) {
	cases := []struct {
		in   []int
		want int
	}{
		{[]int{50, 100, 200}, 50},
		{[]int{25, 100}, 25},
		{[]int{30, 45}, 15},
		{[]int{7}, 7},
	}
	for _, c := range cases {
		if got := gcdAll(c.in); got != c.want {
			t.Errorf("gcdAll(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestModelAtBudget(t *testing.T) {
	m50 := langmodel.New()
	m50.AddDocument([]string{"fifty"})
	m100 := langmodel.New()
	m100.AddDocument([]string{"hundred"})
	final := langmodel.New()
	final.AddDocument([]string{"final"})
	res := &core.Result{
		Learned: final,
		Snapshots: []core.Snapshot{
			{Docs: 50, Model: m50},
			{Docs: 100, Model: m100},
		},
	}
	if got := modelAtBudget(res, 60); !got.Contains("fifty") {
		t.Error("budget 60 should use the 50-doc snapshot")
	}
	if got := modelAtBudget(res, 100); !got.Contains("hundred") {
		t.Error("budget 100 should use the 100-doc snapshot")
	}
	if got := modelAtBudget(res, 10); !got.Contains("final") {
		t.Error("budget below first snapshot should fall back to final model")
	}
}

func TestSeedVariance(t *testing.T) {
	s := smallSuite()
	row, err := s.SeedVariance("CACM", 3)
	if err != nil {
		t.Fatal(err)
	}
	if row.Seeds != 3 {
		t.Errorf("seeds = %d", row.Seeds)
	}
	if row.CtfMean <= 0 || row.CtfMean > 1 {
		t.Errorf("ctf mean %f out of range", row.CtfMean)
	}
	if row.CtfStd < 0 || row.SpearmanStd < 0 || row.QueriesStd < 0 {
		t.Errorf("negative std: %+v", row)
	}
	if row.QueriesMean <= 0 {
		t.Errorf("queries mean %f", row.QueriesMean)
	}
	// Too few seeds get clamped.
	row2, err := s.SeedVariance("CACM", 1)
	if err != nil {
		t.Fatal(err)
	}
	if row2.Seeds != 2 {
		t.Errorf("clamped seeds = %d, want 2", row2.Seeds)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Errorf("mean = %f, want 5", mean)
	}
	if std != 2 {
		t.Errorf("std = %f, want 2", std)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Errorf("empty meanStd = %f, %f", m, s)
	}
}

func TestFederatedRetrieval(t *testing.T) {
	res, err := FederatedRetrieval(5, 200, 80, 10, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries evaluated")
	}
	for name, p := range map[string]float64{
		"central": res.PrecisionCentral,
		"actual":  res.PrecisionActual,
		"sampled": res.PrecisionSampled,
		"random":  res.PrecisionRandom,
	} {
		if p < 0 || p > 1 {
			t.Errorf("%s precision %f out of range", name, p)
		}
	}
	// The headline: selection with sampled models beats random selection
	// and lands near the actual-model pipeline.
	if res.PrecisionSampled <= res.PrecisionRandom {
		t.Errorf("sampled models (%f) no better than random selection (%f)",
			res.PrecisionSampled, res.PrecisionRandom)
	}
	if res.PrecisionSampled < res.PrecisionActual*0.7 {
		t.Errorf("sampled pipeline (%f) far below actual-model pipeline (%f)",
			res.PrecisionSampled, res.PrecisionActual)
	}
}
