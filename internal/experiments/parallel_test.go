package experiments

import (
	"reflect"
	"sync"
	"testing"
)

// goldenPair returns two suites sharing the small-scale corpora: one
// strictly sequential, one running on a 4-worker pool. Determinism of
// core.Sample per seed means both must produce byte-identical rows.
func goldenPair(t *testing.T) (seq, par *Suite) {
	t.Helper()
	base := smallSuite()
	if err := base.Prepare(Corpora()...); err != nil {
		t.Fatal(err)
	}
	seq = base.WithSharedEnvs(base.Seed)
	seq.Parallel = 1
	par = base.WithSharedEnvs(base.Seed)
	par.Parallel = 4
	return seq, par
}

func TestBaselinesParallelGolden(t *testing.T) {
	seq, par := goldenPair(t)
	want, err := seq.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(Corpora()) {
		t.Fatalf("got %d baseline runs", len(want))
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("parallel Baselines differ from sequential")
	}
	// And both match the single-run entry point.
	for i, name := range Corpora() {
		run, err := seq.Baseline(name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(run, want[i]) {
			t.Fatalf("Baselines()[%d] differs from Baseline(%s)", i, name)
		}
	}
}

func TestStrategyMatrixParallelGolden(t *testing.T) {
	seq, par := goldenPair(t)
	names := []string{"CACM", "WSJ88"}
	want, err := seq.StrategyMatrix(names)
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.StrategyMatrix(names)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(names) || len(want[0]) != len(StrategyNames()) {
		t.Fatalf("matrix shape %dx%d", len(want), len(want[0]))
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("parallel StrategyMatrix differs from sequential")
	}
}

func TestTable2ParallelGolden(t *testing.T) {
	seq, par := goldenPair(t)
	ns := []int{1, 2, 4}
	want, err := seq.Table2("CACM", ns)
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Table2("CACM", ns)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("parallel Table2 differs from sequential")
	}
}

func TestSeedVarianceParallelGolden(t *testing.T) {
	seq, par := goldenPair(t)
	want, err := seq.SeedVariance("CACM", 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.SeedVariance("CACM", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("parallel SeedVariance differs: %+v vs %+v", want, got)
	}
}

func TestFederationExtensionsParallelGolden(t *testing.T) {
	wantAgree, err := SelectionAgreement(4, 150, []int{25, 50}, 6, 3, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	gotAgree, err := SelectionAgreement(4, 150, []int{25, 50}, 6, 3, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantAgree, gotAgree) {
		t.Fatal("parallel SelectionAgreement differs from sequential")
	}

	wantFed, err := FederatedRetrieval(4, 150, 60, 6, 2, 9, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	gotFed, err := FederatedRetrieval(4, 150, 60, 6, 2, 9, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantFed, gotFed) {
		t.Fatal("parallel FederatedRetrieval differs from sequential")
	}
}

// TestSuiteConcurrentBaselines exercises the Suite caches from many
// goroutines at once (meaningful under -race): every corpus requested
// repeatedly and concurrently must come back as the one cached run, equal
// to the sequential suite's answer.
func TestSuiteConcurrentBaselines(t *testing.T) {
	seq, par := goldenPair(t)

	type res struct {
		name string
		run  *BaselineRun
		err  error
	}
	const replicas = 3
	out := make(chan res, replicas*len(Corpora()))
	var wg sync.WaitGroup
	for r := 0; r < replicas; r++ {
		for _, name := range Corpora() {
			name := name
			wg.Add(1)
			go func() {
				defer wg.Done()
				run, err := par.Baseline(name)
				out <- res{name, run, err}
			}()
		}
	}
	wg.Wait()
	close(out)

	byName := map[string]*BaselineRun{}
	for r := range out {
		if r.err != nil {
			t.Fatal(r.err)
		}
		if prev, ok := byName[r.name]; ok && prev != r.run {
			t.Fatalf("%s: cache returned distinct runs under concurrency", r.name)
		}
		byName[r.name] = r.run
	}
	for _, name := range Corpora() {
		want, err := seq.Baseline(name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, byName[name]) {
			t.Fatalf("%s: concurrent result differs from sequential", name)
		}
	}
}

// TestSuiteConcurrentStrategies does the same for the strategy cache.
func TestSuiteConcurrentStrategies(t *testing.T) {
	seq, par := goldenPair(t)
	var wg sync.WaitGroup
	results := make([][]StrategyRun, 4)
	errs := make([]error, 4)
	for i := range results {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = par.Strategies("CACM")
		}()
	}
	wg.Wait()
	want, err := seq.Strategies("CACM")
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(want, results[i]) {
			t.Fatalf("concurrent Strategies call %d differs from sequential", i)
		}
	}
}
