package experiments

import (
	"sync"
	"testing"
)

var (
	sharedSuite     *Suite
	sharedSuiteOnce sync.Once
)

// smallSuite keeps unit tests fast: 8% scale, own-model initial terms. The
// suite caches corpora and runs, so tests share one instance.
func smallSuite() *Suite {
	sharedSuiteOnce.Do(func() {
		sharedSuite = NewSuite(0.08, 1)
		sharedSuite.InitialFromTREC = false
	})
	return sharedSuite
}

func TestSuiteEnvCaching(t *testing.T) {
	s := smallSuite()
	a, err := s.Env("CACM")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Env("CACM")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Env not cached")
	}
	if a.Index.NumDocs() != a.Profile.Docs {
		t.Errorf("index has %d docs, profile says %d", a.Index.NumDocs(), a.Profile.Docs)
	}
}

func TestSuiteEnvUnknownCorpus(t *testing.T) {
	if _, err := smallSuite().Env("nope"); err == nil {
		t.Error("unknown corpus accepted")
	}
}

func TestTable1Shapes(t *testing.T) {
	s := smallSuite()
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Size ordering must match the paper's Table 1.
	if !(rows[0].Docs < rows[1].Docs && rows[1].Docs < rows[2].Docs) {
		t.Errorf("doc counts not ordered: %+v", rows)
	}
	if !(rows[0].UniqueTerms < rows[1].UniqueTerms && rows[1].UniqueTerms < rows[2].UniqueTerms) {
		t.Errorf("vocabulary sizes not ordered: %+v", rows)
	}
	for _, r := range rows {
		if r.TotalTerms <= int64(r.UniqueTerms) {
			t.Errorf("%s: total %d <= unique %d", r.Name, r.TotalTerms, r.UniqueTerms)
		}
	}
}

func TestBaselineCurvesBehave(t *testing.T) {
	s := smallSuite()
	run, err := s.Baseline("CACM")
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Points) < 2 {
		t.Fatalf("only %d curve points", len(run.Points))
	}
	first, last := run.Points[0], run.Points[len(run.Points)-1]
	// Coverage metrics must improve with more documents.
	if last.CtfRatio <= first.CtfRatio {
		t.Errorf("ctf ratio did not grow: %f -> %f", first.CtfRatio, last.CtfRatio)
	}
	if last.PctLearned <= first.PctLearned {
		t.Errorf("pct learned did not grow: %f -> %f", first.PctLearned, last.PctLearned)
	}
	for _, p := range run.Points {
		if p.CtfRatio < 0 || p.CtfRatio > 1 || p.PctLearned < 0 || p.PctLearned > 1 {
			t.Errorf("metric out of range: %+v", p)
		}
		if p.Spearman < -1 || p.Spearman > 1 {
			t.Errorf("Spearman out of range: %+v", p)
		}
	}
	// rdiff series exists and is bounded.
	if len(run.Rdiff) < 1 {
		t.Fatal("no rdiff points")
	}
	for _, r := range run.Rdiff {
		if r.Rdiff < 0 || r.Rdiff > 1 {
			t.Errorf("rdiff out of range: %+v", r)
		}
	}
}

func TestBaselineCached(t *testing.T) {
	s := smallSuite()
	a, err := s.Baseline("CACM")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Baseline("CACM")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("baseline not cached")
	}
}

func TestTable2FewerNStillCrosses(t *testing.T) {
	s := smallSuite()
	rows, err := s.Table2("CACM", []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Docs == 0 {
			t.Errorf("N=%d never crossed 80%% ctf ratio", r.N)
		}
		if r.Docs > 0 && (r.SRCC < -1 || r.SRCC > 1) {
			t.Errorf("N=%d SRCC = %f", r.N, r.SRCC)
		}
		if r.Queries == 0 {
			t.Errorf("N=%d no queries recorded", r.N)
		}
	}
}

func TestStrategiesRunAll(t *testing.T) {
	s := smallSuite()
	runs, err := s.Strategies("WSJ88")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 5 {
		t.Fatalf("got %d strategy runs", len(runs))
	}
	seen := map[string]bool{}
	for _, r := range runs {
		seen[r.Strategy] = true
		if r.Docs == 0 || r.Queries == 0 {
			t.Errorf("strategy %s did nothing: %+v", r.Strategy, r)
		}
	}
	for _, want := range StrategyNames() {
		if !seen[want] {
			t.Errorf("strategy %s missing", want)
		}
	}
}

func TestStrategiesOLMNeedsMoreQueries(t *testing.T) {
	// Table 3's headline: random-olm costs about twice the queries of
	// random-llm for the same document budget.
	s := smallSuite()
	runs, err := s.Strategies("WSJ88")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]StrategyRun{}
	for _, r := range runs {
		byName[r.Strategy] = r
	}
	olm, llm := byName["random-olm"], byName["random-llm"]
	if olm.Queries <= llm.Queries {
		t.Errorf("olm %d queries vs llm %d — expected olm to need more",
			olm.Queries, llm.Queries)
	}
	if olm.FailedQueries == 0 {
		t.Error("olm had no failed queries, expected some")
	}
}

func TestTable4SurfacesSeededTerms(t *testing.T) {
	s := smallSuite()
	res, err := s.Table4(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no summary rows")
	}
	if res.SeededFound < 10 {
		t.Errorf("only %d of 50 seeded product terms in top-50 (want >= 10 at small scale)", res.SeededFound)
	}
	if res.DocsSampled == 0 || res.Queries == 0 {
		t.Error("no sampling happened")
	}
}

func TestHashNameStable(t *testing.T) {
	if hashName("CACM") != hashName("CACM") {
		t.Error("hashName not deterministic")
	}
	if hashName("CACM") == hashName("WSJ88") {
		t.Error("hashName collision between corpora")
	}
}

func TestDocBudget(t *testing.T) {
	s := smallSuite()
	env, err := s.Env("CACM")
	if err != nil {
		t.Fatal(err)
	}
	b := s.docBudget("CACM", env)
	if b > env.Profile.Docs {
		t.Errorf("budget %d exceeds corpus size %d", b, env.Profile.Docs)
	}
	if b <= 0 {
		t.Errorf("budget %d", b)
	}
}
