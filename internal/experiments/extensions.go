package experiments

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/langmodel"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/selection"
	"repro/internal/sizeest"
	"repro/internal/starts"
)

// This file implements the extension experiments of DESIGN.md §5 — the
// questions the paper raises but leaves open, answered with the same
// machinery.

// FederationDB is one database of a synthetic federation.
type FederationDB struct {
	// Name labels the database.
	Name string
	// Index is its search engine.
	Index *index.Index
	// Actual is its true language model.
	Actual *langmodel.Model
}

// Federation builds k topically distinct databases of docsEach documents,
// the multi-database universe the selection experiments run against. Each
// database's corpus generation and index build is independent (per-db
// seeds), so they fan out over a worker pool; the returned slice is in
// database order regardless of concurrency.
func Federation(k, docsEach int, seed uint64, opts ...Option) ([]*FederationDB, error) {
	o := applyOptions(opts)
	topics := []string{
		"finance", "law", "medicine", "sport", "energy",
		"travel", "science", "art", "farming", "military",
		"weather", "music", "film", "food", "space",
	}
	return parallel.Map(o.workers, make([]struct{}, k), func(i int, _ struct{}) (*FederationDB, error) {
		topic := topics[i%len(topics)]
		p := corpus.Profile{
			Name:            fmt.Sprintf("db%02d-%s", i, topic),
			Docs:            docsEach,
			SharedVocabSize: 2500,
			SharedProb:      0.5,
			Topics: []corpus.TopicSpec{
				{Name: topic, VocabSize: 8000, Weight: 1},
			},
			DocLenMu:    4.6,
			DocLenSigma: 0.5,
			MinDocLen:   15,
			ZipfS:       1.35,
			ZipfV:       2,
			MorphProb:   0.12,
			Seed:        seed + uint64(i)*7919,
		}
		docs, err := p.Generate()
		if err != nil {
			return nil, err
		}
		ix := index.Build(docs, analysis.Database(), index.InQuery)
		return &FederationDB{Name: p.Name, Index: ix, Actual: ix.LanguageModel()}, nil
	})
}

// AgreementPoint reports database-selection fidelity at one sample size.
type AgreementPoint struct {
	// SampleDocs is the documents sampled per database.
	SampleDocs int
	// Spearman is the mean ranking agreement (actual-model ranking vs
	// learned-model ranking) over the query set.
	Spearman float64
	// Top3Overlap is the mean share of the top-3 selected databases
	// preserved when learned models replace actual ones.
	Top3Overlap float64
}

// AgreementResult is the ext-agree experiment output for one algorithm.
type AgreementResult struct {
	Algorithm string
	Points    []AgreementPoint
}

// SelectionAgreement answers the paper's open question (§5): how accurate
// do learned models have to be before database *selection* stops caring?
// It builds a federation, samples every database at increasing budgets,
// and measures how closely CORI and GlOSS rankings computed from learned
// models track the rankings computed from actual models, averaged over
// nQueries 2-term topical queries.
func SelectionAgreement(numDBs, docsEach int, sampleSizes []int, nQueries int, seed uint64, opts ...Option) ([]AgreementResult, error) {
	o := applyOptions(opts)
	defer o.timeExp("ext-agree")()
	dbs, err := Federation(numDBs, docsEach, seed, opts...)
	if err != nil {
		return nil, err
	}
	actuals := make([]*langmodel.Model, len(dbs))
	for i, db := range dbs {
		actuals[i] = db.Actual
	}

	// Learned models at each budget: sample incrementally per database.
	// Every database's run is independent (own seed), so the federation
	// samples fan out; the per-budget lists are assembled in database
	// order afterwards.
	sorted := append([]int(nil), sampleSizes...)
	sort.Ints(sorted)
	maxBudget := sorted[len(sorted)-1]
	perDB, err := parallel.Map(o.workers, dbs, func(i int, db *FederationDB) ([]*langmodel.Model, error) {
		cfg := core.DefaultConfig(db.Actual, maxBudget, seed+uint64(i)+12345)
		cfg.SnapshotEvery = gcdAll(sorted)
		res, err := core.Sample(db.Index, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: agreement sampling db %d: %w", i, err)
		}
		models := make([]*langmodel.Model, 0, len(sorted))
		for _, budget := range sorted {
			models = append(models, modelAtBudget(res, budget).Normalize(db.Index.Analyzer()))
		}
		return models, nil
	})
	if err != nil {
		return nil, err
	}
	learnedAt := make(map[int][]*langmodel.Model, len(sorted))
	for _, models := range perDB {
		for bi, budget := range sorted {
			learnedAt[budget] = append(learnedAt[budget], models[bi])
		}
	}

	queries := federationQueries(dbs, nQueries, seed+999)
	algs := []selection.Algorithm{selection.CORI{}, selection.Gloss{Estimator: selection.GlossSum}}
	out := make([]AgreementResult, 0, len(algs))
	for _, alg := range algs {
		result := AgreementResult{Algorithm: alg.Name()}
		for _, budget := range sorted {
			var sumRho, sumOverlap float64
			for _, q := range queries {
				rankActual := selection.Rank(alg, q, actuals)
				rankLearned := selection.Rank(alg, q, learnedAt[budget])
				sumRho += selection.RankAgreement(rankActual, rankLearned)
				sumOverlap += selection.TopKOverlap(rankActual, rankLearned, 3)
			}
			result.Points = append(result.Points, AgreementPoint{
				SampleDocs:  budget,
				Spearman:    sumRho / float64(len(queries)),
				Top3Overlap: sumOverlap / float64(len(queries)),
			})
		}
		out = append(out, result)
	}
	return out, nil
}

// modelAtBudget returns the learned model closest to (and not after) the
// given document budget, falling back to the final model.
func modelAtBudget(res *core.Result, budget int) *langmodel.Model {
	best := res.Learned
	for _, s := range res.Snapshots {
		if s.Docs <= budget {
			best = s.Model
		}
	}
	return best
}

// TopicalTerms returns up to k frequent terms of db that appear in *no*
// other federation database — genuinely topical vocabulary. The shared
// head (function words and shared content words) is identical across the
// federation, so filtering on exclusivity is what makes a query have a
// clearly right answer.
func TopicalTerms(db *FederationDB, others []*FederationDB, k int) []string {
	out := make([]string, 0, k)
	for _, t := range db.Actual.TopTerms(langmodel.ByDF, db.Actual.VocabSize()) {
		unique := true
		for _, o := range others {
			if o != db && o.Actual.Contains(t) {
				unique = false
				break
			}
		}
		if unique {
			out = append(out, t)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// federationQueries builds two-term topical queries: each query takes two
// database-exclusive terms from one database's actual model, so every
// query has a clearly right answer. Terms come from the *mid-to-rare*
// band of the exclusive vocabulary: head terms are in every learned model
// after a handful of documents, which would make every selection
// experiment trivially perfect; rarer terms are where learned-model
// coverage actually varies with the sampling budget.
func federationQueries(dbs []*FederationDB, n int, seed uint64) [][]string {
	rng := randx.New(seed)
	queries := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		db := dbs[i%len(dbs)]
		pool := TopicalTerms(db, dbs, 900)
		if len(pool) < 8 {
			continue
		}
		tail := pool[len(pool)/3:]
		queries = append(queries, []string{
			tail[rng.Intn(len(tail))],
			tail[rng.Intn(len(tail))],
		})
	}
	return queries
}

func gcdAll(xs []int) int {
	g := xs[0]
	for _, x := range xs[1:] {
		for x != 0 {
			g, x = x, g%x
		}
	}
	if g < 1 {
		g = 1
	}
	return g
}

// AdversarialResult is the ext-adv experiment output.
type AdversarialResult struct {
	// Query is the bait query used.
	Query []string
	// LiarRankCooperative is the lying database's position (1-based) in
	// the CORI ranking built from STARTS-exported models.
	LiarRankCooperative int
	// LiarRankSampled is its position when models are learned by sampling.
	LiarRankSampled int
	// HonestWinner is the database that actually contains the query topic.
	HonestWinner int
	// CoverageFailures is how many providers refused or could not export
	// under the cooperative protocol (sampling has no such gap).
	CoverageFailures int
}

// Adversarial demonstrates the §2.2 failure modes: a federation where one
// provider lies about containing the query terms (to attract traffic) and
// others refuse to cooperate. Cooperative acquisition ranks the liar
// first and loses refusing databases entirely; query-based sampling is
// immune — the liar's lie never shows up in documents it actually returns.
func Adversarial(numDBs, docsEach, sampleDocs int, seed uint64, opts ...Option) (*AdversarialResult, error) {
	o := applyOptions(opts)
	defer o.timeExp("ext-adv")()
	dbs, err := Federation(numDBs, docsEach, seed, opts...)
	if err != nil {
		return nil, err
	}
	if numDBs < 4 {
		return nil, fmt.Errorf("experiments: adversarial needs >= 4 databases")
	}
	honest := 0  // the database genuinely about the query topic
	liarDB := 1  // misrepresents its contents
	refuser := 2 // will not cooperate

	// Bait query: mid-frequency terms exclusive to the honest database, so
	// the topically right answer is unambiguous. Mid-frequency matters:
	// these are terms the liar genuinely lacks and can inflate without
	// also inflating its collection-size statistics out of range, i.e. the
	// kind of term real misrepresentation targets.
	pool := TopicalTerms(dbs[honest], dbs, 60)
	if len(pool) < 2 {
		return nil, fmt.Errorf("experiments: honest database has no exclusive vocabulary")
	}
	query := pool[len(pool)/2 : len(pool)/2+2]

	// Cooperative acquisition: liar inflates the bait, refuser refuses.
	providers := make([]starts.Provider, numDBs)
	for i, db := range dbs {
		switch i {
		case liarDB:
			providers[i] = starts.Liar{Model: db.Actual, Bait: query, Factor: 500}
		case refuser:
			providers[i] = starts.Noncooperative{}
		default:
			providers[i] = starts.Cooperative{Model: db.Actual}
		}
	}
	models, failures := starts.Acquire(providers)
	coopModels := make([]*langmodel.Model, 0, len(models))
	coopIDs := make([]int, 0, len(models))
	for i := 0; i < numDBs; i++ {
		if m, ok := models[i]; ok {
			coopModels = append(coopModels, m)
			coopIDs = append(coopIDs, i)
		}
	}
	coopRank := selection.Rank(selection.CORI{}, query, coopModels)

	// Sampled acquisition: every database reachable, lies ineffective.
	// Each database samples independently under the worker pool.
	sampled, err := parallel.Map(o.workers, dbs, func(i int, db *FederationDB) (*langmodel.Model, error) {
		cfg := core.DefaultConfig(db.Actual, sampleDocs, seed+uint64(i)+777)
		cfg.SnapshotEvery = 0
		res, err := core.Sample(db.Index, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: adversarial sampling db %d: %w", i, err)
		}
		return res.Learned.Normalize(db.Index.Analyzer()), nil
	})
	if err != nil {
		return nil, err
	}
	sampRank := selection.Rank(selection.CORI{}, query, sampled)

	out := &AdversarialResult{
		Query:            query,
		HonestWinner:     honest,
		CoverageFailures: len(failures),
	}
	for pos, r := range coopRank {
		if coopIDs[r.DB] == liarDB {
			out.LiarRankCooperative = pos + 1
		}
	}
	for pos, r := range sampRank {
		if r.DB == liarDB {
			out.LiarRankSampled = pos + 1
		}
	}
	return out, nil
}

// SizeRow is the ext-size experiment output for one corpus: how well the
// two sampling-based estimators recover the database's document count —
// the piece of information the paper says "appears difficult to acquire
// by sampling" (§3).
type SizeRow struct {
	Corpus string
	// Actual is the true document count.
	Actual int
	// CaptureRecapture is the Chapman-corrected two-sample estimate and
	// its relative error.
	CaptureRecapture    float64
	CaptureRecaptureErr float64
	// SampleResample is the hit-count-based estimate and its relative
	// error.
	SampleResample    float64
	SampleResampleErr float64
	// SampleDocs is the per-pass sampling budget used.
	SampleDocs int
}

// SizeEstimation runs both size estimators against every corpus with the
// given per-pass document budget.
func (s *Suite) SizeEstimation(sampleDocs int) ([]SizeRow, error) {
	defer s.timeExp("ext-size")()
	if err := s.prepareCorpora(); err != nil {
		return nil, err
	}
	return parallel.Map(s.workers(), Corpora(), func(_ int, name string) (SizeRow, error) {
		env, err := s.Env(name)
		if err != nil {
			return SizeRow{}, err
		}
		initial, err := s.initialModel(env)
		if err != nil {
			return SizeRow{}, err
		}
		budget := sampleDocs
		if budget > env.Profile.Docs {
			budget = env.Profile.Docs
		}
		cr, err := sizeest.CaptureRecaptureSample(env.Index, initial, budget, s.Seed+hashName(name)+71)
		if err != nil {
			return SizeRow{}, fmt.Errorf("experiments: size %s: %w", name, err)
		}
		cfg := core.DefaultConfig(initial, budget, s.Seed+hashName(name)+73)
		cfg.SnapshotEvery = 0
		res, err := core.Sample(env.Index, cfg)
		if err != nil {
			return SizeRow{}, fmt.Errorf("experiments: size %s: %w", name, err)
		}
		learned := res.Learned.Normalize(env.Index.Analyzer())
		sr, err := sizeest.SampleResample(env.Index, learned, 20, s.Seed+hashName(name)+79)
		if err != nil {
			return SizeRow{}, fmt.Errorf("experiments: size %s: %w", name, err)
		}
		return SizeRow{
			Corpus: name, Actual: env.Profile.Docs, SampleDocs: budget,
			CaptureRecapture:    cr,
			CaptureRecaptureErr: sizeest.RelativeError(cr, env.Profile.Docs),
			SampleResample:      sr,
			SampleResampleErr:   sizeest.RelativeError(sr, env.Profile.Docs),
		}, nil
	})
}

// prepareCorpora warms the three Table 1 corpora (plus the TREC123 initial
// model when needed) concurrently before a per-corpus fan-out.
func (s *Suite) prepareCorpora() error {
	prep := Corpora()
	if s.InitialFromTREC {
		prep = append(prep, "TREC123")
	}
	return s.Prepare(prep...)
}

// StoppingRow is the ext-stop experiment output for one corpus: what the
// §6 rdiff stopping rule costs and buys compared with the fixed budget.
type StoppingRow struct {
	Corpus string
	// Docs is where the convergence rule stopped.
	Docs int
	// CtfRatio and Spearman are the learned-model quality at that point.
	CtfRatio float64
	Spearman float64
	// FixedDocs / FixedCtfRatio / FixedSpearman are the paper's fixed
	// budget and its quality, for comparison.
	FixedDocs     int
	FixedCtfRatio float64
	FixedSpearman float64
}

// StoppingRule evaluates StopWhenConverged(threshold, 2 spans) against the
// paper's fixed budgets on every corpus.
func (s *Suite) StoppingRule(threshold float64) ([]StoppingRow, error) {
	defer s.timeExp("ext-stop")()
	if err := s.prepareCorpora(); err != nil {
		return nil, err
	}
	return parallel.Map(s.workers(), Corpora(), func(_ int, name string) (StoppingRow, error) {
		env, err := s.Env(name)
		if err != nil {
			return StoppingRow{}, err
		}
		initial, err := s.initialModel(env)
		if err != nil {
			return StoppingRow{}, err
		}
		cfg := core.DefaultConfig(initial, 0, s.Seed+hashName(name)+31)
		cfg.Stop = core.StopAny(
			core.StopWhenConverged(threshold, 2, langmodel.ByDF),
			core.StopAfterDocs(env.Profile.Docs),
		)
		res, err := core.Sample(env.Index, cfg)
		if err != nil {
			return StoppingRow{}, fmt.Errorf("experiments: stopping rule on %s: %w", name, err)
		}
		_, ctf, _, rhoSimple, _ := measure(res.Learned, env)
		row := StoppingRow{Corpus: name, Docs: res.Docs, CtfRatio: ctf, Spearman: rhoSimple}

		base, err := s.Baseline(name)
		if err != nil {
			return StoppingRow{}, err
		}
		row.FixedDocs = base.Docs
		if n := len(base.Points); n > 0 {
			row.FixedCtfRatio = base.Points[n-1].CtfRatio
			row.FixedSpearman = base.Points[n-1].SpearmanSimple
		}
		return row, nil
	})
}
