package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/langmodel"
	"repro/internal/metrics"
	"repro/internal/phrase"
)

// PhrasePoint compares unigram and bigram coverage at one sample size
// (ext-phrase). The paper suggests richer models "might include
// information about phrases" but calls their value unclear (§2.1); this
// experiment quantifies the cost: phrase vocabularies are much sparser, so
// phrase statistics converge more slowly under sampling.
type PhrasePoint struct {
	// Docs is the number of sampled documents.
	Docs int
	// UnigramCtf is the single-term ctf ratio at this point.
	UnigramCtf float64
	// BigramCtf is the adjacent-pair ctf ratio at this point.
	BigramCtf float64
	// BigramVocab is the learned bigram vocabulary size.
	BigramVocab int
}

// recorderDB captures fetched document text in sample order.
type recorderDB struct {
	db    core.Database
	texts []string
}

func (r *recorderDB) Search(q string, n int) ([]int, error) { return r.db.Search(q, n) }

func (r *recorderDB) Fetch(id int) (corpus.Document, error) {
	d, err := r.db.Fetch(id)
	if err == nil {
		r.texts = append(r.texts, d.Text)
	}
	return d, err
}

// PhraseConvergence samples the corpus once and reports unigram vs bigram
// ctf-ratio curves at 50-document steps. Both learned and actual models
// use the database's own analyzer here (one consistent vocabulary for the
// pair statistics).
func (s *Suite) PhraseConvergence(name string) ([]PhrasePoint, error) {
	defer s.timeExp("ext-phrase")()
	env, err := s.Env(name)
	if err != nil {
		return nil, err
	}
	initial, err := s.initialModel(env)
	if err != nil {
		return nil, err
	}
	an := env.Index.Analyzer()

	// Ground truth over the full corpus.
	actualUni := env.Actual
	actualBi := langmodel.New()
	for i := range env.Docs {
		actualBi.AddDocument(phrase.Bigrams(an.Tokens(env.Docs[i].Text), nil))
	}

	rec := &recorderDB{db: env.Index}
	cfg := core.DefaultConfig(initial, s.docBudget(name, env), s.Seed+hashName(name)+91)
	cfg.SnapshotEvery = 0
	if _, err := core.Sample(rec, cfg); err != nil {
		return nil, fmt.Errorf("experiments: phrase sampling %s: %w", name, err)
	}

	learnedUni := langmodel.New()
	learnedBi := langmodel.New()
	var points []PhrasePoint
	for i, text := range rec.texts {
		tokens := an.Tokens(text)
		learnedUni.AddDocument(tokens)
		learnedBi.AddDocument(phrase.Bigrams(tokens, nil))
		if (i+1)%50 == 0 || i == len(rec.texts)-1 {
			points = append(points, PhrasePoint{
				Docs:        i + 1,
				UnigramCtf:  metrics.CtfRatio(learnedUni, actualUni),
				BigramCtf:   metrics.CtfRatio(learnedBi, actualBi),
				BigramVocab: learnedBi.VocabSize(),
			})
		}
	}
	return points, nil
}

// WritePhrase renders the ext-phrase experiment.
func WritePhrase(w io.Writer, name string, points []PhrasePoint) error {
	fmt.Fprintf(w, "Extension: unigram vs phrase (bigram) model convergence (%s)\n", name)
	tw := newTW(w)
	fmt.Fprintln(tw, "docs\tunigram ctf ratio\tbigram ctf ratio\tbigram vocab")
	for _, p := range points {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%d\n", p.Docs, p.UnigramCtf, p.BigramCtf, p.BigramVocab)
	}
	return tw.Flush()
}
