package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/corpus"
	"repro/internal/langmodel"
	"repro/internal/summarize"
)

// This file renders experiment results the way the paper presents them:
// one block per table or figure, with the same rows/series. Figures are
// printed as aligned numeric series (docs-examined on the x axis).

func newTW(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
}

// WriteTable1 renders the test-corpus summary (Table 1).
func WriteTable1(w io.Writer, rows []corpus.Stats) error {
	fmt.Fprintln(w, "Table 1: test corpora")
	tw := newTW(w)
	fmt.Fprintln(tw, "Name\tSize, bytes\tSize, docs\tSize, unique terms\tSize, total terms\tTopics")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n",
			r.Name, r.Bytes, r.Docs, r.UniqueTerms, r.TotalTerms, r.Topics)
	}
	return tw.Flush()
}

// writeCurve renders one metric column of each run against docs examined.
func writeCurve(w io.Writer, title, metric string, runs []*BaselineRun, pick func(CurvePoint) float64) error {
	fmt.Fprintln(w, title)
	tw := newTW(w)
	fmt.Fprint(tw, "docs")
	for _, r := range runs {
		fmt.Fprintf(tw, "\t%s", r.Corpus)
	}
	fmt.Fprintf(tw, "\t(%s)\n", metric)
	// Union of x positions, assuming aligned 50-doc snapshots.
	maxLen := 0
	for _, r := range runs {
		if len(r.Points) > maxLen {
			maxLen = len(r.Points)
		}
	}
	for i := 0; i < maxLen; i++ {
		docs := 0
		for _, r := range runs {
			if i < len(r.Points) {
				docs = r.Points[i].Docs
				break
			}
		}
		fmt.Fprintf(tw, "%d", docs)
		for _, r := range runs {
			if i < len(r.Points) {
				fmt.Fprintf(tw, "\t%.4f", pick(r.Points[i]))
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw, "\t")
	}
	return tw.Flush()
}

// WriteFigure1a renders percentage-of-vocabulary-learned curves (Fig 1a).
func WriteFigure1a(w io.Writer, runs []*BaselineRun) error {
	return writeCurve(w, "Figure 1a: percentage of database terms covered by the learned language model",
		"pct learned", runs, func(p CurvePoint) float64 { return p.PctLearned })
}

// WriteFigure1b renders ctf-ratio curves (Fig 1b).
func WriteFigure1b(w io.Writer, runs []*BaselineRun) error {
	return writeCurve(w, "Figure 1b: percentage of database word occurrences covered (ctf ratio)",
		"ctf ratio", runs, func(p CurvePoint) float64 { return p.CtfRatio })
}

// WriteFigure2 renders Spearman rank-correlation curves (Fig 2): first the
// paper's formula and rank convention (dense shared ranks), then the
// tie-corrected statistic as a methodological footnote.
func WriteFigure2(w io.Writer, runs []*BaselineRun) error {
	if err := writeCurve(w, "Figure 2: Spearman rank correlation between learned and actual df rankings",
		"spearman, paper formula", runs, func(p CurvePoint) float64 { return p.SpearmanSimple }); err != nil {
		return err
	}
	return writeCurve(w, "Figure 2 (tie-corrected Spearman, for reference — df ranks are massively tied)",
		"spearman, tie-corrected", runs, func(p CurvePoint) float64 { return p.Spearman })
}

// WriteTable2 renders the documents-per-query sweep (Table 2).
func WriteTable2(w io.Writer, rows []Table2Row) error {
	fmt.Fprintln(w, "Table 2: documents examined to reach ctf ratio 80%, by docs-per-query")
	tw := newTW(w)
	fmt.Fprintln(tw, "Corpus\tDocs/query\tDocs\tSRCC\tQueries")
	for _, r := range rows {
		docs := fmt.Sprintf("%d", r.Docs)
		srcc := fmt.Sprintf("%.2f", r.SRCC)
		if r.Docs == 0 {
			docs, srcc = "-", "-"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%d\n", r.Corpus, r.N, docs, srcc, r.Queries)
	}
	return tw.Flush()
}

// writeStrategyCurve renders one metric for each strategy run.
func writeStrategyCurve(w io.Writer, title string, runs []StrategyRun, pick func(CurvePoint) float64) error {
	fmt.Fprintln(w, title)
	tw := newTW(w)
	fmt.Fprint(tw, "docs")
	for _, r := range runs {
		fmt.Fprintf(tw, "\t%s", r.Strategy)
	}
	fmt.Fprintln(tw, "\t")
	maxLen := 0
	for _, r := range runs {
		if len(r.Points) > maxLen {
			maxLen = len(r.Points)
		}
	}
	for i := 0; i < maxLen; i++ {
		docs := 0
		for _, r := range runs {
			if i < len(r.Points) {
				docs = r.Points[i].Docs
				break
			}
		}
		fmt.Fprintf(tw, "%d", docs)
		for _, r := range runs {
			if i < len(r.Points) {
				fmt.Fprintf(tw, "\t%.4f", pick(r.Points[i]))
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw, "\t")
	}
	return tw.Flush()
}

// WriteFigure3a renders ctf-ratio by query-selection strategy (Fig 3a).
func WriteFigure3a(w io.Writer, runs []StrategyRun) error {
	return writeStrategyCurve(w,
		"Figure 3a: ctf ratio by query selection strategy (WSJ88)",
		runs, func(p CurvePoint) float64 { return p.CtfRatio })
}

// WriteFigure3b renders Spearman by query-selection strategy (Fig 3b).
func WriteFigure3b(w io.Writer, runs []StrategyRun) error {
	return writeStrategyCurve(w,
		"Figure 3b: Spearman rank correlation by query selection strategy (WSJ88)",
		runs, func(p CurvePoint) float64 { return p.SpearmanSimple })
}

// WriteTable3 renders query counts per strategy (Table 3).
func WriteTable3(w io.Writer, runs []StrategyRun) error {
	fmt.Fprintln(w, "Table 3: queries required to retrieve the document budget, by strategy")
	tw := newTW(w)
	fmt.Fprintln(tw, "Strategy\tDocs\tQueries\tFailed queries")
	for _, r := range runs {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", r.Strategy, r.Docs, r.Queries, r.FailedQueries)
	}
	return tw.Flush()
}

// WriteFigure4 renders the rdiff convergence curves (Fig 4).
func WriteFigure4(w io.Writer, runs []*BaselineRun) error {
	fmt.Fprintln(w, "Figure 4: rdiff between language models at consecutive 50-document snapshots")
	tw := newTW(w)
	fmt.Fprint(tw, "docs")
	for _, r := range runs {
		fmt.Fprintf(tw, "\t%s", r.Corpus)
	}
	fmt.Fprintln(tw, "\t")
	maxLen := 0
	for _, r := range runs {
		if len(r.Rdiff) > maxLen {
			maxLen = len(r.Rdiff)
		}
	}
	for i := 0; i < maxLen; i++ {
		docs := 0
		for _, r := range runs {
			if i < len(r.Rdiff) {
				docs = r.Rdiff[i].Docs
				break
			}
		}
		fmt.Fprintf(tw, "%d", docs)
		for _, r := range runs {
			if i < len(r.Rdiff) {
				fmt.Fprintf(tw, "\t%.5f", r.Rdiff[i].Rdiff)
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw, "\t")
	}
	return tw.Flush()
}

// WriteTable4 renders the sampled-database summary (Table 4).
func WriteTable4(w io.Writer, res *Table4Result) error {
	fmt.Fprintf(w, "Table 4: top %d terms of the sampled Support database (ranked by avg-tf)\n",
		len(res.Rows))
	fmt.Fprintf(w, "(%d docs sampled with %d queries; %d/%d seeded product terms surfaced)\n",
		res.DocsSampled, res.Queries, res.SeededFound, len(corpus.Table4Terms()))
	return summarize.Render(w, res.Rows, langmodel.ByAvgTF)
}

// WriteAgreement renders the ext-agree selection-fidelity experiment.
func WriteAgreement(w io.Writer, results []AgreementResult) error {
	fmt.Fprintln(w, "Extension: database-selection agreement, learned vs actual models")
	tw := newTW(w)
	fmt.Fprintln(tw, "Algorithm\tSample docs\tRanking Spearman\tTop-3 overlap")
	for _, res := range results {
		for _, p := range res.Points {
			fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\n", res.Algorithm, p.SampleDocs, p.Spearman, p.Top3Overlap)
		}
	}
	return tw.Flush()
}

// WriteAdversarial renders the ext-adv cooperative-failure experiment.
func WriteAdversarial(w io.Writer, res *AdversarialResult) error {
	fmt.Fprintln(w, "Extension: misrepresentation and non-cooperation (CORI selection)")
	tw := newTW(w)
	fmt.Fprintf(tw, "Bait query\t%v\n", res.Query)
	fmt.Fprintf(tw, "Liar rank, cooperative (STARTS) models\t%d\n", res.LiarRankCooperative)
	fmt.Fprintf(tw, "Liar rank, sampled models\t%d\n", res.LiarRankSampled)
	fmt.Fprintf(tw, "Databases lost to non-cooperation\t%d\n", res.CoverageFailures)
	return tw.Flush()
}

// WriteSizes renders the ext-size database-size-estimation experiment.
func WriteSizes(w io.Writer, rows []SizeRow) error {
	fmt.Fprintln(w, "Extension: database size estimation by sampling")
	tw := newTW(w)
	fmt.Fprintln(tw, "Corpus\tActual docs\tCapture-recapture\trel err\tSample-resample\trel err\tSample docs")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.2f\t%.0f\t%.2f\t%d\n",
			r.Corpus, r.Actual, r.CaptureRecapture, r.CaptureRecaptureErr,
			r.SampleResample, r.SampleResampleErr, r.SampleDocs)
	}
	return tw.Flush()
}

// WriteStopping renders the ext-stop rdiff stopping-rule experiment.
func WriteStopping(w io.Writer, rows []StoppingRow) error {
	fmt.Fprintln(w, "Extension: rdiff convergence stopping rule vs fixed budget")
	tw := newTW(w)
	fmt.Fprintln(tw, "Corpus\tStop docs\tctf ratio\tSpearman\tFixed docs\tctf ratio\tSpearman")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%d\t%.3f\t%.3f\n",
			r.Corpus, r.Docs, r.CtfRatio, r.Spearman,
			r.FixedDocs, r.FixedCtfRatio, r.FixedSpearman)
	}
	return tw.Flush()
}
