// Package randx provides deterministic, seedable random sources and the
// distribution samplers used by the synthetic corpus generators and the
// sampling experiments.
//
// Everything in this repository that is stochastic draws from a randx.Source
// created from an explicit seed, so every experiment is bit-reproducible.
package randx

import "math"

// Source is a deterministic pseudo-random number generator based on
// splitmix64 (Steele, Lea & Flood 2014). It is small, fast, passes BigCrush
// when used as a 64-bit generator, and — unlike math/rand's global source —
// is never seeded from the clock.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield independent
// streams for practical purposes.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next 64 bits from the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits -> [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork returns a new Source whose stream is independent of s but fully
// determined by s's current state and the given label. It is used to give
// each corpus, topic, or experiment its own stream without manual seed
// bookkeeping.
func (s *Source) Fork(label uint64) *Source {
	return New(s.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// LogNormal returns a log-normal variate with the given location mu and
// scale sigma of the underlying normal. Synthetic document lengths are
// log-normal, which matches the heavy right tail of real document-length
// distributions.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}
