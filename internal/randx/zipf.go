package randx

import "math"

// Zipf samples from a (generalized) Zipf–Mandelbrot distribution over
// {0, 1, ..., imax}: P(k) proportional to ((v + k) ** -s), with s > 1 and
// v >= 1. It uses Hörmann & Derflinger's rejection-inversion method, the
// same algorithm used by math/rand.Zipf, re-implemented here so it can run
// on our deterministic Source (math/rand/v2 dropped Zipf entirely).
//
// Word frequencies in text follow a Zipf distribution (the paper leans on
// this in §3, §4.3 and §5), so Zipf is the backbone of the synthetic corpus
// generators.
type Zipf struct {
	src          *Source
	imax         float64
	v            float64
	q            float64
	oneminusQ    float64
	oneminusQinv float64
	hxm          float64 // h(imax + 0.5)
	hx0minusHxm  float64
	s            float64
}

// NewZipf returns a Zipf sampler. s must be > 1, v >= 1, imax >= 0;
// otherwise NewZipf panics (the generators always pass validated profiles).
func NewZipf(src *Source, s float64, v float64, imax uint64) *Zipf {
	if s <= 1 || v < 1 {
		panic("randx: NewZipf requires s > 1 and v >= 1")
	}
	z := &Zipf{
		src:          src,
		imax:         float64(imax),
		v:            v,
		q:            s,
		oneminusQ:    1 - s,
		oneminusQinv: 1 / (1 - s),
	}
	z.hxm = z.h(z.imax + 0.5)
	z.hx0minusHxm = z.h(0.5) - math.Exp(math.Log(z.v)*(-z.q)) - z.hxm
	z.s = 1 - z.hinv(z.h(1.5)-math.Exp(-z.q*math.Log(z.v+1)))
	return z
}

// h is the integral of the density: h(x) = (v+x)^(1-q) / (1-q).
func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneminusQ*math.Log(z.v+x)) * z.oneminusQinv
}

// hinv is the inverse of h.
func (z *Zipf) hinv(x float64) float64 {
	return math.Exp(z.oneminusQinv*math.Log(z.oneminusQ*x)) - z.v
}

// Uint64 returns a Zipf-distributed value in [0, imax].
func (z *Zipf) Uint64() uint64 {
	for {
		r := z.src.Float64()
		ur := z.hxm + r*z.hx0minusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.s {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			return uint64(k)
		}
	}
}
