package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSourceDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between independent streams", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	if err := quick.Check(func(_ int) bool {
		f := s.Float64()
		return f >= 0 && f < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %f, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5)
	for _, n := range []int{0, 1, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(9).Fork(1)
	b := New(9).Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collide %d times", same)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %f, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(17)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(4, 0.5); v <= 0 {
			t.Fatalf("LogNormal returned %f", v)
		}
	}
}

func TestZipfRange(t *testing.T) {
	s := New(21)
	z := NewZipf(s, 1.3, 1.0, 999)
	for i := 0; i < 10000; i++ {
		v := z.Uint64()
		if v > 999 {
			t.Fatalf("Zipf value %d out of range", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Rank 0 must be sampled far more often than rank 100.
	s := New(23)
	z := NewZipf(s, 1.5, 1.0, 9999)
	counts := make(map[uint64]int)
	for i := 0; i < 200000; i++ {
		counts[z.Uint64()]++
	}
	if counts[0] < 10*counts[100] {
		t.Fatalf("distribution not skewed: count(0)=%d count(100)=%d", counts[0], counts[100])
	}
	// Monotone-ish decay over well-separated ranks.
	if counts[0] <= counts[10] || counts[10] <= counts[1000] {
		t.Fatalf("counts not decaying: c0=%d c10=%d c1000=%d", counts[0], counts[10], counts[1000])
	}
}

func TestZipfMatchesTheory(t *testing.T) {
	// For s=2, v=1: P(0)/P(1) = (2/1)^-(-2) = 4.
	s := New(29)
	z := NewZipf(s, 2.0, 1.0, 100000)
	var c0, c1 int
	for i := 0; i < 400000; i++ {
		switch z.Uint64() {
		case 0:
			c0++
		case 1:
			c1++
		}
	}
	ratio := float64(c0) / float64(c1)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("P(0)/P(1) = %f, want ~4", ratio)
	}
}

func TestZipfPanicsOnBadParams(t *testing.T) {
	for _, tc := range []struct{ s, v float64 }{{1.0, 1.0}, {0.5, 1.0}, {2.0, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(s=%f, v=%f) did not panic", tc.s, tc.v)
				}
			}()
			NewZipf(New(1), tc.s, tc.v, 10)
		}()
	}
}

func BenchmarkSourceUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkZipf(b *testing.B) {
	z := NewZipf(New(1), 1.3, 2.0, 1<<20)
	for i := 0; i < b.N; i++ {
		z.Uint64()
	}
}
