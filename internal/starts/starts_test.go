package starts

import (
	"errors"
	"net"
	"strings"
	"testing"

	"repro/internal/langmodel"
)

func testModel() *langmodel.Model {
	m := langmodel.New()
	m.AddDocument([]string{"apple", "apple", "bear"})
	m.AddDocument([]string{"apple", "cat"})
	return m
}

func TestCooperativeExportsCopy(t *testing.T) {
	orig := testModel()
	p := Cooperative{Model: orig}
	got, err := p.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(orig) {
		t.Error("export differs from model")
	}
	got.AddDocument([]string{"mutation"})
	if orig.Contains("mutation") {
		t.Error("export aliases provider's model")
	}
}

func TestCooperativeNilModel(t *testing.T) {
	if _, err := (Cooperative{}).Export(); err == nil {
		t.Error("nil model export should fail")
	}
}

func TestNoncooperativeAndLegacy(t *testing.T) {
	if _, err := (Noncooperative{}).Export(); !errors.Is(err, ErrRefused) {
		t.Errorf("got %v, want ErrRefused", err)
	}
	if _, err := (Legacy{}).Export(); !errors.Is(err, ErrUnsupported) {
		t.Errorf("got %v, want ErrUnsupported", err)
	}
}

func TestLiarInflatesBait(t *testing.T) {
	m := testModel()
	liar := Liar{Model: m, Bait: []string{"bear", "invented"}, Factor: 10}
	got, err := liar.Export()
	if err != nil {
		t.Fatal(err)
	}
	if got.CTF("bear") != 10*m.CTF("bear") {
		t.Errorf("bear ctf = %d, want %d", got.CTF("bear"), 10*m.CTF("bear"))
	}
	// df stays consistent with the claimed document count.
	if got.DF("bear") > got.Docs() {
		t.Errorf("df %d exceeds docs %d: lie not internally consistent", got.DF("bear"), got.Docs())
	}
	if !got.Contains("invented") {
		t.Error("invented bait term missing")
	}
	// Non-bait terms untouched.
	if got.CTF("apple") != m.CTF("apple") {
		t.Error("liar modified non-bait term")
	}
	// The true model is never mutated.
	if m.Contains("invented") {
		t.Error("liar mutated its true model")
	}
}

func TestLiarDefaultFactor(t *testing.T) {
	liar := Liar{Model: testModel(), Bait: []string{"zebra"}}
	got, err := liar.Export()
	if err != nil {
		t.Fatal(err)
	}
	if got.CTF("zebra") < 99 {
		t.Errorf("default lie too small: ctf = %d", got.CTF("zebra"))
	}
}

func TestLiarNilModel(t *testing.T) {
	if _, err := (Liar{}).Export(); err == nil {
		t.Error("nil model liar should fail")
	}
}

func TestAcquirePartitionsResults(t *testing.T) {
	providers := []Provider{
		Cooperative{Model: testModel()},
		Noncooperative{},
		Legacy{},
		Liar{Model: testModel(), Bait: []string{"bait"}},
	}
	models, failures := Acquire(providers)
	if len(models) != 2 {
		t.Errorf("acquired %d models, want 2", len(models))
	}
	if len(failures) != 2 {
		t.Errorf("got %d failures, want 2", len(failures))
	}
	if _, ok := models[0]; !ok {
		t.Error("cooperative provider missing from results")
	}
	if err := failures[1]; !errors.Is(err, ErrRefused) {
		t.Errorf("failure 1 = %v", err)
	}
	if err := failures[2]; !errors.Is(err, ErrUnsupported) {
		t.Errorf("failure 2 = %v", err)
	}
}

func TestWireExport(t *testing.T) {
	m := testModel()
	srv, err := ListenAndServe(Cooperative{Model: m}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got, err := FetchModel(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Error("model round-trip over wire failed")
	}
}

func TestWireRefusal(t *testing.T) {
	srv, err := ListenAndServe(Noncooperative{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, err = FetchModel(srv.Addr())
	if err == nil || !strings.Contains(err.Error(), "refuses") {
		t.Errorf("got %v, want refusal", err)
	}
}

func TestWireUnknownCommand(t *testing.T) {
	srv, err := ListenAndServe(Cooperative{Model: testModel()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GIMME\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(buf[:n]), "ERR") {
		t.Errorf("response = %q", buf[:n])
	}
}

func TestWireServerCloseIdempotent(t *testing.T) {
	srv, err := ListenAndServe(Cooperative{Model: testModel()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestFetchModelBadAddr(t *testing.T) {
	if _, err := FetchModel("127.0.0.1:1"); err == nil {
		t.Error("expected dial error")
	}
}
