package starts

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/langmodel"
)

// This file implements the protocol on the wire: a minimal line-oriented
// exchange in the spirit of STARTS metadata exports. The client sends
//
//	EXPORT
//
// and the server answers either
//
//	OK
//	<language model as one JSON document>
//
// or
//
//	ERR <message>
//
// The JSON payload is the langmodel persistence format.

// Server serves a Provider's exports over TCP.
type Server struct {
	provider Provider
	ln       net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ListenAndServe starts an export server on addr ("127.0.0.1:0" picks a
// free port).
func ListenAndServe(p Provider, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("starts: listen: %w", err)
	}
	s := &Server{provider: p, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	//lint:ignore baregoroutine accept loop lives for the server, not a bounded fan-out; Close joins it via wg
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down and waits for in-flight handlers. Live
// connections are snapshotted under the lock and closed outside it —
// closing is network I/O, and handler teardown takes the same lock.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		//lint:ignore maporder shutdown close order over live peers is not observable output
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		//lint:ignore baregoroutine one handler per live connection is the server's lifecycle, not pool fan-out; Close joins via wg
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		//lint:ignore errsink teardown of a connection the handler already gave up on; nothing consumes the error
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		switch strings.TrimSpace(line) {
		case "EXPORT":
			m, err := s.provider.Export()
			if err != nil {
				fmt.Fprintf(w, "ERR %s\n", err)
			} else {
				fmt.Fprintln(w, "OK")
				if _, err := m.WriteTo(w); err != nil {
					return
				}
			}
		case "QUIT":
			w.Flush()
			return
		default:
			fmt.Fprintf(w, "ERR unknown command\n")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// FetchModel connects to a STARTS export server and retrieves its language
// model. Errors from non-cooperating providers come back as protocol
// errors.
func FetchModel(addr string) (*langmodel.Model, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("starts: dial %s: %w", addr, err)
	}
	//lint:ignore errsink read-side teardown; the fetch already succeeded or failed through the protocol errors
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, "EXPORT"); err != nil {
		return nil, fmt.Errorf("starts: send: %w", err)
	}
	r := bufio.NewReader(conn)
	status, err := r.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("starts: read status: %w", err)
	}
	status = strings.TrimSpace(status)
	if strings.HasPrefix(status, "ERR") {
		return nil, fmt.Errorf("starts: remote: %s", strings.TrimSpace(strings.TrimPrefix(status, "ERR")))
	}
	if status != "OK" {
		return nil, fmt.Errorf("starts: unexpected status %q", status)
	}
	m, err := langmodel.Read(r)
	if err != nil {
		return nil, fmt.Errorf("starts: payload: %w", err)
	}
	return m, nil
}
