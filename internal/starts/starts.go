// Package starts implements the cooperative language-model acquisition
// baseline the paper argues against (§2.2): a STARTS-like protocol in which
// each database exports its own language model on request.
//
// The package also models the failure modes that motivate query-based
// sampling: providers that can't cooperate (legacy systems), won't
// cooperate (no incentive, hostile), or lie (misrepresent their contents to
// attract traffic). The adversarial experiment (EXPERIMENTS.md, ext-adv)
// shows database selection being corrupted by a lying provider while
// sampling-built models are unaffected.
package starts

import (
	"errors"
	"fmt"

	"repro/internal/langmodel"
)

// Errors returned by non-cooperating providers.
var (
	// ErrRefused is returned by providers that choose not to cooperate
	// with this selection service.
	ErrRefused = errors.New("starts: provider refuses to export its language model")
	// ErrUnsupported is returned by legacy systems that predate the
	// protocol and cannot export anything.
	ErrUnsupported = errors.New("starts: provider does not implement the protocol")
)

// Provider is a database-side implementation of the cooperative protocol:
// export your language model on request.
type Provider interface {
	// Export returns the provider's language model, or an error when it
	// cannot or will not cooperate.
	Export() (*langmodel.Model, error)
}

// Cooperative is an honest provider: it exports its true language model.
type Cooperative struct {
	// Model is the database's actual language model.
	Model *langmodel.Model
}

// Export implements Provider. It returns a copy so callers cannot mutate
// the provider's model.
func (c Cooperative) Export() (*langmodel.Model, error) {
	if c.Model == nil {
		return nil, errors.New("starts: cooperative provider has no model")
	}
	return c.Model.Clone(), nil
}

// Noncooperative refuses every export request.
type Noncooperative struct{}

// Export implements Provider.
func (Noncooperative) Export() (*langmodel.Model, error) { return nil, ErrRefused }

// Legacy cannot speak the protocol at all.
type Legacy struct{}

// Export implements Provider.
func (Legacy) Export() (*langmodel.Model, error) { return nil, ErrUnsupported }

// Liar misrepresents its contents: it exports its true model with the
// frequencies of chosen bait terms inflated, the classic trick for pulling
// traffic toward a site (§2.2: "It is not uncommon for information
// providers on the Internet to misrepresent their services").
type Liar struct {
	// Model is the true model the lie is built on.
	Model *langmodel.Model
	// Bait lists the terms whose frequencies are inflated. Terms absent
	// from the true model are invented.
	Bait []string
	// Factor multiplies df and ctf of bait terms. Values below 2 are
	// raised to 100 — a liar worth the name lies big.
	Factor int
}

// Export implements Provider.
func (l Liar) Export() (*langmodel.Model, error) {
	if l.Model == nil {
		return nil, errors.New("starts: liar has no model to distort")
	}
	factor := l.Factor
	if factor < 2 {
		factor = 100
	}
	out := l.Model.Clone()
	docs := out.Docs()
	for _, term := range l.Bait {
		st, ok := out.Stats(term)
		if !ok {
			st = langmodel.TermStats{DF: 1, CTF: 1}
		}
		inflatedDF := st.DF * factor
		if inflatedDF > docs && docs > 0 {
			inflatedDF = docs // keep the lie internally consistent
		}
		out.AddTerm(term, langmodel.TermStats{
			DF:  inflatedDF - st.DF,
			CTF: st.CTF * int64(factor-1),
		})
	}
	return out, nil
}

// Acquire collects language models from a set of providers, the way a
// cooperative selection service would populate its index. It returns the
// models that could be acquired and a map of provider index to acquisition
// error for the rest — the coverage gap sampling does not have.
func Acquire(providers []Provider) (models map[int]*langmodel.Model, failures map[int]error) {
	models = make(map[int]*langmodel.Model)
	failures = make(map[int]error)
	for i, p := range providers {
		m, err := p.Export()
		if err != nil {
			failures[i] = fmt.Errorf("provider %d: %w", i, err)
			continue
		}
		models[i] = m
	}
	return models, failures
}
