// Package repro reproduces "Automatic Discovery of Language Models for
// Text Databases" (Callan, Connell & Du, SIGMOD 1999): query-based
// sampling as a way for a database-selection service to learn a language
// model of any searchable text database without its cooperation.
//
// The library lives under internal/ (this module is the application):
//
//   - internal/core       — query-based sampling (the paper's contribution)
//   - internal/index      — inverted-index retrieval engine (INQUERY-style)
//   - internal/analysis   — tokenizer, 418-word stoplist, Porter stemmer
//   - internal/corpus     — synthetic CACM / WSJ88 / TREC-123 / Support corpora
//   - internal/langmodel  — df/ctf language models
//   - internal/metrics    — pct-learned, ctf ratio, Spearman, rdiff, tau
//   - internal/selection  — CORI and GlOSS database selection
//   - internal/starts     — cooperative (STARTS) baseline + failure modes
//   - internal/netsearch  — TCP search substrate (remote sampling)
//   - internal/expansion  — §8 co-occurrence query expansion
//   - internal/summarize  — §7 database-content summaries
//   - internal/experiments— every table/figure of the paper, reproduced
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. bench_test.go in this
// directory regenerates each table and figure as a Go benchmark.
package repro
