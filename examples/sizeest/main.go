// Sizeest: estimate how big a database is without being told (§3's open
// problem).
//
// The paper notes that database size "appears difficult to acquire by
// sampling". Two later-literature estimators acquire it anyway, using
// nothing beyond the search interface:
//
//   - capture–recapture: two independent samples; the overlap of captured
//     document ids reveals the population size;
//   - sample–resample: compare a term's frequency in the sample with the
//     hit count the database itself reports for that term.
//
// Run it with:
//
//	go run ./examples/sizeest
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/sizeest"
)

func main() {
	for _, p := range []corpus.Profile{
		corpus.CACM(),
		corpus.Scaled(corpus.WSJ88(), 0.5),
	} {
		docs := p.MustGenerate()
		db := index.Build(docs, analysis.Database(), index.InQuery)
		actual := db.LanguageModel()
		truth := db.NumDocs()
		fmt.Printf("%s: true size %d documents (the estimators don't know this)\n", p.Name, truth)

		// Capture–recapture: two independent 200-document samples.
		cr, err := sizeest.CaptureRecaptureSample(db, actual, 200, 11)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  capture-recapture: %8.0f  (rel err %.2f)\n",
			cr, sizeest.RelativeError(cr, truth))

		// Sample–resample: one sample plus the database's hit counts.
		cfg := core.DefaultConfig(actual, 200, 13)
		cfg.SnapshotEvery = 0
		res, err := core.Sample(db, cfg)
		if err != nil {
			log.Fatal(err)
		}
		learned := res.Learned.Normalize(db.Analyzer())
		sr, err := sizeest.SampleResample(db, learned, 20, 17)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  sample-resample:   %8.0f  (rel err %.2f; biased low — sampled docs\n",
			sr, sizeest.RelativeError(sr, truth))
		fmt.Println("                     are term-rich, inflating the probability estimate)")
		fmt.Println()
	}
}
