// Remote: sample an uncooperative database over TCP, and watch the
// cooperative protocol fail where sampling succeeds.
//
// The example starts two servers in-process:
//
//   - a netsearch server exposing only the minimal search/fetch interface
//     (the database is otherwise a black box), and
//   - a STARTS export server whose provider *lies* about its contents.
//
// The selection service learns an accurate model through the black-box
// interface, while the cooperative path hands it a distorted one.
//
// Run it with:
//
//	go run ./examples/remote
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/langmodel"
	"repro/internal/metrics"
	"repro/internal/netsearch"
	"repro/internal/starts"
)

func main() {
	// The provider's side: a WSJ-like database.
	docs := corpus.Scaled(corpus.WSJ88(), 0.25).MustGenerate()
	db := index.Build(docs, analysis.Database(), index.InQuery)
	actual := db.LanguageModel()

	searchSrv, err := netsearch.Serve(db, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore errsink example-exit cleanup; a close error has no consumer
	defer searchSrv.Close()

	liar := starts.Liar{Model: actual, Bait: []string{"miracle", "free", "winner"}, Factor: 1000}
	exportSrv, err := starts.ListenAndServe(liar, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore errsink example-exit cleanup; a close error has no consumer
	defer exportSrv.Close()

	fmt.Printf("remote database up: search on %s, STARTS export on %s\n\n",
		searchSrv.Addr(), exportSrv.Addr())

	// Path 1: the cooperative protocol. We get a model... a distorted one.
	coop, err := starts.FetchModel(exportSrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cooperative acquisition (STARTS export):")
	for _, bait := range liar.Bait {
		fmt.Printf("  claimed ctf(%q) = %-8d actual = %d\n", bait, coop.CTF(bait), actual.CTF(bait))
	}

	// Path 2: query-based sampling through the black-box interface.
	client, err := netsearch.Dial(searchSrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore errsink example-exit cleanup; a close error has no consumer
	defer client.Close()

	cfg := core.DefaultConfig(actual, 200, 3) // initial term source only
	res, err := core.Sample(client, cfg)
	if err != nil {
		log.Fatal(err)
	}
	learned := res.Learned.Normalize(db.Analyzer())
	fmt.Printf("\nquery-based sampling over TCP (%d docs, %d queries):\n", res.Docs, res.Queries)
	for _, bait := range liar.Bait {
		fmt.Printf("  learned ctf(%q) = %-8d actual = %d\n", bait, learned.CTF(bait), actual.CTF(bait))
	}
	fmt.Printf("\nlearned-model quality: ctf-ratio=%.3f spearman=%.3f\n",
		metrics.CtfRatio(learned, actual),
		metrics.Spearman(learned, actual, langmodel.ByDF))
	fmt.Println("\nthe lie lives only in the export; documents can't sustain it.")
}
