// Expansion: co-occurrence query expansion from the union of samples (§8).
//
// Query expansion needs a representative corpus to mine co-occurrence
// patterns from. Expanding from any *one* database biases selection toward
// it; the union of the samples the selection service already collected is
// unbiased. This example builds that union across a federation and expands
// queries with it.
//
// Run it with:
//
//	go run ./examples/expansion
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/expansion"
	"repro/internal/experiments"
)

func main() {
	dbs, err := experiments.Federation(5, 600, 21)
	if err != nil {
		log.Fatal(err)
	}

	// Sample every database; pool the raw sampled documents. We re-fetch
	// the sampled documents into the pool by re-running the same sampling
	// configuration with a recording wrapper.
	// Pool documents are analyzed with the same pipeline the selection
	// service uses for queries (stop + stem), so query terms and pooled
	// terms live in one vocabulary.
	pool := expansion.NewPool()
	an := analysis.Database()
	for i, db := range dbs {
		rec := &recordingDB{db: db.Index}
		cfg := core.DefaultConfig(db.Actual, 150, uint64(500+i))
		cfg.SnapshotEvery = 0
		if _, err := core.Sample(rec, cfg); err != nil {
			log.Fatal(err)
		}
		for _, text := range rec.texts {
			pool.AddDocument(an.Tokens(text))
		}
	}
	fmt.Printf("union of samples: %d documents from %d databases\n\n", pool.Docs(), len(dbs))

	// Expand topical queries. Pick, for each target database, a topical
	// term the pooled sample actually saw a few times — a term the pool
	// has never seen has no co-occurrence signal to mine.
	stop := analysis.InqueryStoplist()
	for target := 0; target < 3; target++ {
		var query []string
		best := 0
		for _, t := range experiments.TopicalTerms(dbs[target], dbs, 200) {
			if df := pool.DF(t); df > best {
				best = df
				query = []string{t}
			}
		}
		if query == nil {
			fmt.Printf("(no sampled topical term for %s)\n\n", dbs[target].Name)
			continue
		}
		fmt.Printf("query %v (from %s):\n", query, dbs[target].Name)
		for _, c := range pool.Expand(query, 5, stop) {
			fmt.Printf("  + %-16s score=%.5f co-docs=%d\n", c.Term, c.Score, c.CoDocs)
		}
		fmt.Println()
	}
	fmt.Println("expansion terms come from documents that co-occur with the query")
	fmt.Println("across the whole federation — no single database is favored.")
}

// recordingDB wraps a core.Database and keeps the text of every document
// the sampler fetches — the sample the expansion pool is built from.
type recordingDB struct {
	db    core.Database
	texts []string
}

func (r *recordingDB) Search(q string, n int) ([]int, error) { return r.db.Search(q, n) }

func (r *recordingDB) Fetch(id int) (corpus.Document, error) {
	d, err := r.db.Fetch(id)
	if err == nil {
		r.texts = append(r.texts, d.Text)
	}
	return d, err
}
