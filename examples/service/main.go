// Service: embed the database-selection service in a program.
//
// cmd/selectd runs the service as an HTTP daemon; this example uses the
// same Service type in-process: register databases (one of them remote
// over TCP), sample them, persist the models, rank queries, and extend a
// sample when more accuracy is needed — the paper's §5 "sampling can be
// continued" property.
//
// Run it with:
//
//	go run ./examples/service
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/netsearch"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	dir, err := os.MkdirTemp("", "selectsvc-*")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore errsink best-effort temp-dir cleanup at example exit
	defer os.RemoveAll(dir)
	st, err := store.Open(filepath.Join(dir, "models"))
	if err != nil {
		log.Fatal(err)
	}

	dbs, err := experiments.Federation(4, 500, 3)
	if err != nil {
		log.Fatal(err)
	}

	svc := service.New(analysis.Database(), st)
	//lint:ignore errsink example-exit cleanup; a close error has no consumer
	defer svc.Close()

	// Register three databases in-process and one over TCP — the service
	// cannot tell the difference, which is the point.
	for _, db := range dbs[:3] {
		if err := svc.RegisterLocal(db.Name, db.Index); err != nil {
			log.Fatal(err)
		}
	}
	remote, err := netsearch.Serve(dbs[3].Index, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore errsink example-exit cleanup; a close error has no consumer
	defer remote.Close()
	if err := svc.Register(dbs[3].Name, remote.Addr()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("sampling every database (100 docs each)...")
	for _, db := range dbs {
		status, err := svc.Sample(db.Name, service.SampleOptions{Docs: 100, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %4d docs, %4d queries, %5d terms\n",
			status.Name, status.SampledDocs, status.Queries, status.Terms)
	}

	// Route a query that topically belongs to the remote database.
	queryTerms := experiments.TopicalTerms(dbs[3], dbs, 2)
	query := queryTerms[0] + " " + queryTerms[1]
	ranked, err := svc.Rank(query, "cori", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop databases for %q:\n", query)
	for i, r := range ranked {
		fmt.Printf("  %d. %-18s %.4f\n", i+1, r.Name, r.Score)
	}

	// Need more accuracy on one database? Extend its sample.
	before, _ := svc.Summary(dbs[0].Name, "avg-tf", 3)
	status, err := svc.Sample(dbs[0].Name, service.SampleOptions{Docs: 150, Seed: 8, Extend: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nextended %s to %d docs (%d terms); top terms before/after:\n",
		status.Name, status.SampledDocs, status.Terms)
	after, _ := svc.Summary(dbs[0].Name, "avg-tf", 3)
	for i := range after {
		b := "-"
		if i < len(before) {
			b = before[i].Term
		}
		fmt.Printf("  %-16s -> %s\n", b, after[i].Term)
	}

	names, _ := st.List()
	fmt.Printf("\nmodels persisted on disk: %v\n", names)
	fmt.Println("a restarted service would load these instead of re-sampling.")
}
