// Federated search: the paper's motivating scenario end to end.
//
// A selection service faces many independent text databases. It learns a
// language model for each by query-based sampling (no cooperation), then
// routes queries to the most promising databases with CORI, searches only
// those, and merges results — the architecture of §1–§2.
//
// Run it with:
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/langmodel"
	"repro/internal/selection"
)

func main() {
	// A federation of 6 topically distinct databases.
	const (
		numDBs     = 6
		docsEach   = 800
		sampleDocs = 150
	)
	fmt.Printf("building %d databases (%d docs each)...\n", numDBs, docsEach)
	dbs, err := experiments.Federation(numDBs, docsEach, 7)
	if err != nil {
		log.Fatal(err)
	}

	// The selection service samples each database once, offline.
	fmt.Printf("sampling %d documents from each database...\n\n", sampleDocs)
	models := make([]*langmodel.Model, numDBs)
	for i, db := range dbs {
		cfg := core.DefaultConfig(db.Actual, sampleDocs, uint64(100+i))
		cfg.SnapshotEvery = 0
		res, err := core.Sample(db.Index, cfg)
		if err != nil {
			log.Fatal(err)
		}
		models[i] = res.Learned.Normalize(db.Index.Analyzer())
	}

	// Online: queries arrive; the service selects, searches, merges.
	for target := 0; target < 3; target++ {
		query := experiments.TopicalTerms(dbs[target], dbs, 4)[:2]
		fmt.Printf("query %v (topically belongs to %s)\n", query, dbs[target].Name)

		ranked := selection.Rank(selection.CORI{}, query, models)
		fmt.Println("  database selection (CORI over learned models):")
		for pos, r := range ranked[:3] {
			fmt.Printf("    %d. %-18s %.4f\n", pos+1, dbs[r.DB].Name, r.Score)
		}

		// Search the top-2 selected databases and merge by score.
		type merged struct {
			db    string
			doc   int
			score float64
		}
		var results []merged
		for _, r := range ranked[:2] {
			hits, err := dbs[r.DB].Index.SearchScored(query[0]+" "+query[1], 3)
			if err != nil {
				log.Fatal(err)
			}
			for _, h := range hits {
				// Weight document scores by database goodness — simple
				// score-times-belief result merging.
				results = append(results, merged{dbs[r.DB].Name, h.Doc, h.Score * r.Score})
			}
		}
		for i := 0; i < len(results); i++ {
			for j := i + 1; j < len(results); j++ {
				if results[j].score > results[i].score {
					results[i], results[j] = results[j], results[i]
				}
			}
		}
		fmt.Println("  merged results:")
		n := len(results)
		if n > 4 {
			n = 4
		}
		for _, r := range results[:n] {
			fmt.Printf("    %-18s doc %-5d %.4f\n", r.db, r.doc, r.score)
		}
		if dbs[ranked[0].DB] == dbs[target] {
			fmt.Println("  -> selection routed the query to the right database")
		} else {
			fmt.Println("  -> selection missed (sampled models are approximations)")
		}
		fmt.Println()
	}
}
