// Quickstart: learn a language model for a text database you do not
// control, using nothing but its search interface.
//
// This is the minimal end-to-end use of the library:
//
//  1. Build (or connect to) a searchable full-text database.
//  2. Run query-based sampling against it.
//  3. Inspect the learned language model and measure its accuracy.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/langmodel"
	"repro/internal/metrics"
)

func main() {
	// 1. A database. Here: a synthetic CACM-like collection of 3,204
	// scientific abstracts, indexed with its own conventions (stopword
	// removal + Porter stemming) that the sampler knows nothing about.
	docs := corpus.CACM().MustGenerate()
	db := index.Build(docs, analysis.Database(), index.InQuery)
	fmt.Printf("database: %d documents, %d index terms\n", db.NumDocs(), db.VocabSize())

	// 2. Sample it: 4 documents per query, random query terms from the
	// growing learned model, stop after 300 documents. The initial query
	// term is drawn from any handy language model — here the database's
	// own (the paper found the choice immaterial).
	cfg := core.DefaultConfig(db.LanguageModel(), 300, 42)
	res, err := core.Sample(db, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d documents with %d queries\n", res.Docs, res.Queries)
	fmt.Printf("learned model: %d terms, %d occurrences\n",
		res.Learned.VocabSize(), res.Learned.TotalCTF())

	// 3. How good is it? Normalize the learned vocabulary to the
	// database's conventions and compare with the actual model.
	actual := db.LanguageModel()
	learned := res.Learned.Normalize(db.Analyzer())
	fmt.Printf("\naccuracy after %d of %d documents (%.1f%% of the database):\n",
		res.Docs, db.NumDocs(), 100*float64(res.Docs)/float64(db.NumDocs()))
	fmt.Printf("  vocabulary learned: %5.1f%%  (of unique terms — dominated by rare words)\n",
		100*metrics.PercentageLearned(learned, actual))
	fmt.Printf("  ctf ratio:          %5.1f%%  (of term occurrences — the metric that matters)\n",
		100*metrics.CtfRatio(learned, actual))
	fmt.Printf("  Spearman rank corr: %6.3f  (df ranking agreement)\n",
		metrics.Spearman(learned, actual, langmodel.ByDF))

	// Bonus: what is this database about? Top terms by avg-tf.
	fmt.Println("\nmost informative learned terms (avg-tf):")
	for _, t := range res.Learned.TopTerms(langmodel.ByAvgTF, 8) {
		st, _ := res.Learned.Stats(t)
		fmt.Printf("  %-14s df=%-4d ctf=%d\n", t, st.DF, st.CTF)
	}
}
