// Summarize: peek inside an unknown database (§7).
//
// The sampler is pointed at a technical-support knowledge base it has
// never seen. After a few dozen queries, the learned language model is
// displayed three ways (df, ctf, avg-tf) — reproducing the observation
// behind Table 4 that avg-tf ranking surfaces the most informative
// content terms.
//
// Run it with:
//
//	go run ./examples/summarize
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/langmodel"
	"repro/internal/summarize"
)

func main() {
	// The unknown database: a Microsoft-support-like knowledge base.
	docs := corpus.Support().MustGenerate()
	db := index.Build(docs, analysis.Database(), index.InQuery)
	fmt.Printf("sampling an unknown database (%d documents)...\n\n", db.NumDocs())

	// §7 sampled 25 documents per query; so do we.
	cfg := core.DefaultConfig(db.LanguageModel(), 300, 11)
	cfg.DocsPerQuery = 25
	res, err := core.Sample(db, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("examined %d documents via %d queries\n\n", res.Docs, res.Queries)

	stop := analysis.InqueryStoplist()
	for _, metric := range []langmodel.RankMetric{langmodel.ByDF, langmodel.ByCTF, langmodel.ByAvgTF} {
		fmt.Printf("top 15 terms by %s:\n", metric)
		rows := summarize.Top(res.Learned, metric, 15, stop)
		if err := summarize.Render(os.Stdout, rows, metric); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("the avg-tf ranking should read like a product list —")
	fmt.Println("those are the §7 'content words' a person can browse.")
}
