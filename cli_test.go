package repro

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The CLI integration tests build the real binaries once and drive them
// the way a user would: flags, files, pipes, and (for selectd) live HTTP.

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

// buildCLIs compiles every command into a shared temp dir.
func buildCLIs(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration tests are not short")
	}
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "repro-cli-*")
		if cliErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", cliDir+string(os.PathSeparator), "./cmd/...")
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			cliErr = err
			cliDir = string(out)
		}
	})
	if cliErr != nil {
		t.Fatalf("building CLIs: %v (%s)", cliErr, cliDir)
	}
	return cliDir
}

func runCLI(t *testing.T, name string, args ...string) (string, string) {
	t.Helper()
	bin := filepath.Join(buildCLIs(t), name)
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s",
			name, args, err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestCLICorpusgen(t *testing.T) {
	stdout, _ := runCLI(t, "corpusgen", "-corpus", "CACM", "-scale", "0.05", "-sample", "1")
	if !strings.Contains(stdout, "CACM: 160 docs") {
		t.Errorf("unexpected corpusgen output:\n%s", stdout)
	}
	if !strings.Contains(stdout, "[0]") {
		t.Errorf("sample document missing:\n%s", stdout)
	}
}

func TestCLIQbsampleAndLmtool(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "lm.json")
	binPath := filepath.Join(dir, "lm.qblm")

	_, stderr := runCLI(t, "qbsample",
		"-corpus", "CACM", "-scale", "0.1", "-docs", "50", "-seed", "3", "-out", jsonPath)
	if !strings.Contains(stderr, "sampled") || !strings.Contains(stderr, "accuracy vs actual model") {
		t.Errorf("qbsample stderr:\n%s", stderr)
	}

	stdout, _ := runCLI(t, "lmtool", "info", jsonPath)
	if !strings.Contains(stdout, "vocabulary:") {
		t.Errorf("lmtool info output:\n%s", stdout)
	}

	runCLI(t, "lmtool", "convert", jsonPath, binPath)
	ji, err := os.Stat(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := os.Stat(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if bi.Size() >= ji.Size() {
		t.Errorf("binary (%d) not smaller than JSON (%d)", bi.Size(), ji.Size())
	}

	// compare: a model against itself is perfect.
	stdout, _ = runCLI(t, "lmtool", "compare", jsonPath, binPath)
	if !strings.Contains(stdout, "ctf ratio:        1.0000") {
		t.Errorf("self-compare not perfect:\n%s", stdout)
	}

	stdout, _ = runCLI(t, "lmtool", "top", "-k", "3", binPath)
	if len(strings.Fields(stdout)) < 2 {
		t.Errorf("lmtool top output too small:\n%s", stdout)
	}
}

func TestCLIExperimentsSubset(t *testing.T) {
	stdout, _ := runCLI(t, "experiments",
		"-scale", "0.05", "-light-init", "-exp", "table1")
	if !strings.Contains(stdout, "Table 1: test corpora") {
		t.Errorf("experiments output:\n%s", stdout)
	}
	for _, corpus := range []string{"CACM", "WSJ88", "TREC123"} {
		if !strings.Contains(stdout, corpus) {
			t.Errorf("missing %s in:\n%s", corpus, stdout)
		}
	}
}

func TestCLIDbselect(t *testing.T) {
	stdout, _ := runCLI(t, "dbselect",
		"-dbs", "3", "-docs-each", "150", "-sample-docs", "40", "-alg", "gloss-sum")
	if !strings.Contains(stdout, "gloss-sum ranking for query") {
		t.Errorf("dbselect output:\n%s", stdout)
	}
	if !strings.Contains(stdout, "1.") || !strings.Contains(stdout, "db00-") {
		t.Errorf("ranking rows missing:\n%s", stdout)
	}
}

func TestCLIRemoteSampling(t *testing.T) {
	// corpusgen serves a database over TCP; qbsample samples it remotely —
	// the two halves of the paper's minimal-cooperation story as separate
	// processes.
	dir := buildCLIs(t)
	addr := "127.0.0.1:18732"
	server := exec.Command(filepath.Join(dir, "corpusgen"),
		"-corpus", "CACM", "-scale", "0.1", "-serve", addr)
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()

	// Wait for the TCP listener.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			break
		}
		time.Sleep(200 * time.Millisecond)
	}

	out := filepath.Join(t.TempDir(), "remote.json")
	_, stderr := runCLI(t, "qbsample",
		"-addr", addr, "-first", "time", "-docs", "30", "-seed", "5", "-out", out)
	if !strings.Contains(stderr, "sampled 3") { // 30-ish documents
		t.Errorf("remote qbsample stderr:\n%s", stderr)
	}
	stdout, _ := runCLI(t, "lmtool", "info", out)
	if !strings.Contains(stdout, "documents:") {
		t.Errorf("remote model unreadable:\n%s", stdout)
	}
}

func TestCLISelectdHTTP(t *testing.T) {
	bin := filepath.Join(buildCLIs(t), "selectd")
	addr := "127.0.0.1:18731"
	cmd := exec.Command(bin, "-addr", addr, "-demo", "2", "-demo-docs", "120", "-demo-sample", "30")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Wait for the daemon to come up.
	var resp *http.Response
	var err error
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err = http.Get("http://" + addr + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("daemon never came up: %v", err)
	}
	resp.Body.Close()

	resp, err = http.Get("http://" + addr + "/databases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statuses []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&statuses); err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 2 {
		t.Fatalf("daemon lists %d databases, want 2", len(statuses))
	}
	for _, st := range statuses {
		if st["has_model"] != true {
			t.Errorf("database %v has no model", st["name"])
		}
	}
}
